"""The star editor's notifier role (site 0, the centre of the star).

The notifier is an :class:`~repro.session.EditorEndpoint` like the
clients: it owns a transport rather than inheriting one.  On top of that
it maintains the full ``SV_0``; on receiving an operation from site
``x`` it determines the concurrent history entries with formula (7),
transforms the operation against them, executes it, and broadcasts the
*transformed* form to every other site with a per-destination compressed
timestamp (formulas 1-2).  This redefinition is what collapses the
causality relation to two dimensions.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.clocks.events import EventLog
from repro.clocks.vector import concurrent as vc_concurrent
from repro.core.concurrency import notifier_concurrent
from repro.core.history import HistoryBuffer, HistoryEntry
from repro.core.state_vector import NotifierStateVector
from repro.core.timestamp import CompressedTimestamp, OriginKind
from repro.editor.messages import (
    ElectMessage,
    OpMessage,
    PromoteMessage,
    ResyncRequest,
    SnapshotMessage,
    StateContribution,
)
from repro.editor.star_client import execute_remote
from repro.net.reliability import ReliabilityConfig
from repro.net.scheduler import Scheduler
from repro.net.transport import Envelope
from repro.obs.profiler import profiled
from repro.obs.tracer import TraceEventKind, Tracer
from repro.ot.types import get_type
from repro.session import CheckRecord, ConsistencyError, EditorEndpoint

if TYPE_CHECKING:
    from repro.editor.star_client import StarClient


@dataclass
class PendingOp:
    """A broadcast operation awaiting acknowledgement by one destination.

    Each destination holds its **own** record: the form evolves by
    inclusion transformation against that destination's incoming
    operations only, keeping the server-to-destination transformation
    path context-valid (the Jupiter bridge invariant).  Sharing one
    object across destinations would let one client's traffic corrupt
    another's path.
    """

    op: Any
    op_id: str
    origin_site: int


class StarNotifier(EditorEndpoint):
    """Site 0: the notifier at the centre of the star."""

    def __init__(
        self,
        sim: Scheduler,
        n_sites: int,
        ot_type_name: str = "text-positional",
        initial_state: Any = None,
        event_log: EventLog | None = None,
        verify_with_oracle: bool = False,
        transform_enabled: bool = True,
        record_checks: bool = True,
        reliability: ReliabilityConfig | None = None,
        tracer: Tracer | None = None,
        *,
        pid: int = 0,
        notifier_epoch: int = 0,
        adopt_transport: Any = None,
    ) -> None:
        super().__init__(sim, pid, reliability, tracer, adopt_transport=adopt_transport)
        if n_sites < 1:
            raise ValueError(f"need at least one collaborating site, got {n_sites}")
        self.n_sites = n_sites
        # ``pid`` is 0 for the original notifier; a *promoted* notifier
        # keeps the successor client's site id.  Either way the process
        # plays the paper's "site 0" role -- CheckRecords carry the role
        # id 0 so formula-(7) diagnostics stay uniform across epochs.
        self.notifier_epoch = notifier_epoch
        self.ot = get_type(ot_type_name)
        self.document = self.ot.initial() if initial_state is None else initial_state
        self.sv = NotifierStateVector(n_sites)
        self.hb = HistoryBuffer()
        # Sites currently receiving broadcasts.  The original notifier
        # serves everyone from the start; a promoted one re-admits each
        # survivor through the failover snapshot path first.
        self.destinations: set[int] = {i for i in range(1, n_sites + 1) if i != pid}
        # Per destination: broadcast operations the destination has not
        # yet acknowledged, each in its per-destination form.  Every ack
        # drops a prefix, so deques keep that O(acked) not O(n).
        self.sent_to: dict[int, deque[PendingOp]] = {
            i: deque() for i in range(1, n_sites + 1)
        }
        # How many entries have been dropped from each sent_to deque.
        self.acked: dict[int, int] = {i: 0 for i in range(1, n_sites + 1)}
        self.event_log = event_log
        self.verify_with_oracle = verify_with_oracle
        self.transform_enabled = transform_enabled
        self.record_checks = record_checks
        self.checks: list[CheckRecord] = []
        self.executed_op_ids: list[str] = []
        self.broadcast_log: list[tuple[str, int, CompressedTimestamp]] = []
        # Failover bookkeeping: the original client op ids embodied in
        # ``document`` at promotion time (members dedup replays against
        # it), and ops the dead centre acknowledged that the baseline
        # rolled back.
        self.incorporated: frozenset[str] = frozenset()
        self.failover_losses = 0

    @profiled("notifier.ingest")
    def _handle_app_message(self, envelope: Envelope) -> None:
        if isinstance(envelope.payload, ResyncRequest):
            self._serve_resync(envelope.source, envelope.payload.epoch)
            return
        if isinstance(envelope.payload, StateContribution):
            # A member presumed dead during promotion whose report
            # arrives late: it already re-homed to us, so heal it with
            # a failover snapshot rather than leaving it stranded.
            self._serve_failover_snapshot(envelope.source)
            return
        if isinstance(envelope.payload, (ElectMessage, PromoteMessage)):
            # Election-window stragglers (e.g. a duplicate suspicion
            # delivered after promotion completed).
            self.rel_stats.stale_epoch_discarded += 1
            return
        message: OpMessage = envelope.payload
        source = envelope.source
        ts = message.timestamp
        if message.origin_wall is not None and self.tracer is not None:
            self.tracer.emit(
                TraceEventKind.SPAN, self.pid, op_id=message.op_id,
                peer=source, via="ingest", origin_time=message.origin_wall,
            )
        diagnostics = self.record_checks or self.verify_with_oracle
        concurrent_entries = (
            self._concurrency_pass(message, source) if diagnostics else None
        )
        # FIFO acknowledgement: the source has seen the first T[1]
        # operations ever sent to it; drop them from its pending list.
        already = self.acked[source]
        to_drop = ts.first - already
        if to_drop < 0:
            raise ConsistencyError(
                f"notifier: site {source} acknowledged {ts.first} < previously "
                f"acknowledged {already} (FIFO violated?)"
            )
        for _ in range(to_drop):
            self.sent_to[source].popleft()
        self.acked[source] = ts.first
        if self.transform_enabled and concurrent_entries is not None:
            expected = [entry.op_id for entry in self.sent_to[source]]
            actual = [entry.op_id for entry in concurrent_entries]
            if expected != actual:
                raise ConsistencyError(
                    f"notifier: formula (7) concurrent set {actual} != pending "
                    f"set {expected} for {message.op_id} from site {source}"
                )
        new_op = message.op
        if self.transform_enabled:
            for entry in self.sent_to[source]:
                new_op, updated = self.ot.transform(
                    new_op, entry.op, source < entry.origin_site
                )
                entry.op = updated
        self._execute_and_broadcast(new_op, source, message.op_id, ts,
                                    origin_wall=message.origin_wall)

    @profiled("notifier.broadcast")
    def _execute_and_broadcast(
        self, new_op: Any, source: int, source_op_id: str,
        ts: CompressedTimestamp, origin_wall: float | None = None
    ) -> None:
        """Execute; the transformed operation becomes a *new* operation
        "generated at site 0" (paper Section 3.1 / Fig. 3), broadcast to
        every other destination with a per-destination compressed
        timestamp (formulas 1-2)."""
        self.document = execute_remote(
            self.ot, self.document, new_op, self.transform_enabled
        )
        self.sv.record_execution_from(source)
        transformed_id = f"{source_op_id}'"
        self.executed_op_ids.append(transformed_id)
        if self.event_log is not None:
            self.event_log.execute(self.pid, source_op_id)
            self.event_log.generate(self.pid, transformed_id)
        if self.tracer is not None:
            # Execution of the incoming form, then generation of the
            # transformed form "at site 0" -- mirroring the event log.
            self.tracer.emit(
                TraceEventKind.EXECUTED, self.pid, op_id=source_op_id,
                timestamp=tuple(ts.as_paper_list()),
            )
            self.tracer.emit(
                TraceEventKind.TRANSFORMED, self.pid, op_id=transformed_id,
                source_op_id=source_op_id,
                timestamp=tuple(self.sv.full_timestamp().as_paper_list()),
            )
        if origin_wall is not None:
            # The centre executed the op too: close its span, then open
            # the broadcast stage the remote executions will pair with.
            if self.tracer is not None:
                self.tracer.emit(
                    TraceEventKind.SPAN, self.pid, op_id=source_op_id,
                    peer=source, via="execute", origin_time=origin_wall,
                )
                self.tracer.emit(
                    TraceEventKind.SPAN, self.pid, op_id=transformed_id,
                    peer=source, source_op_id=source_op_id,
                    via="broadcast", origin_time=origin_wall,
                )
            if self.span_clock is not None and source != self.pid:
                self.e2e_window.append(self.span_clock() - origin_wall)
        self.hb.append(
            HistoryEntry(
                op=new_op,
                timestamp=self.sv.full_timestamp(),
                origin_site=source,
                origin_kind=OriginKind.FROM_CLIENT,
                op_id=transformed_id,
                executed_at=self.sim.now,
                source_op_id=source_op_id,
            )
        )
        for dest in sorted(self.destinations):
            if dest == source:
                continue
            dest_ts = self.sv.compress_for_destination(dest)
            self.broadcast_log.append((transformed_id, dest, dest_ts))
            out = OpMessage(
                op=new_op,
                timestamp=dest_ts,
                origin_site=source,
                op_id=transformed_id,
                source_op_id=source_op_id,
                origin_wall=origin_wall,
            )
            self.send(dest, out, timestamp_bytes=dest_ts.size_bytes())
            self.sent_to[dest].append(
                PendingOp(op=new_op, op_id=transformed_id, origin_site=source)
            )

    def generate_local(self, op: Any, op_id: str) -> str:
        """A local edit at the *promoted* notifier's own site.

        The centre executes its own operation directly: nothing in the
        centre's history can be concurrent with an operation generated
        on the centre's current document (formula (7) yields no
        concurrent entries -- asserted below), so no transformation is
        needed and the op broadcasts like any client op.  The timestamp
        mirrors the client convention: ``[received, own-including-this]``
        evaluated at the centre.
        """
        if self.pid == 0:
            raise RuntimeError(
                "generate_local is the promoted notifier's path; site 0 has no "
                "client-side editor"
            )
        ts = CompressedTimestamp(
            self.sv.total() - self.sv[self.pid], self.sv[self.pid] + 1
        )
        if self.event_log is not None:
            self.event_log.generate(self.pid, op_id)
        if self.tracer is not None:
            self.tracer.emit(
                TraceEventKind.GENERATED, self.pid, op_id=op_id,
                timestamp=tuple(ts.as_paper_list()),
            )
        origin_wall = None
        if self.span_clock is not None:
            origin_wall = self.span_clock()
            if self.tracer is not None:
                self.tracer.emit(
                    TraceEventKind.SPAN, self.pid, op_id=op_id,
                    peer=self.pid, via="generate", origin_time=origin_wall,
                )
        message = OpMessage(op=op, timestamp=ts, origin_site=self.pid, op_id=op_id)
        diagnostics = self.record_checks or self.verify_with_oracle
        if diagnostics:
            concurrent_entries = self._concurrency_pass(message, self.pid)
            if concurrent_entries:
                raise ConsistencyError(
                    f"notifier: centre-local op {op_id} tested concurrent with "
                    f"{[e.op_id for e in concurrent_entries]}"
                )
        self._execute_and_broadcast(op, self.pid, op_id, ts,
                                    origin_wall=origin_wall)
        return op_id

    @profiled("notifier.concurrency")
    def _concurrency_pass(self, message: OpMessage, source: int) -> list[HistoryEntry]:
        """Run formula (7) over ``HB_0``; record and (optionally) verify."""
        out: list[HistoryEntry] = []
        for entry in self.hb:
            assert entry.origin_kind is OriginKind.FROM_CLIENT
            verdict = notifier_concurrent(
                message.timestamp, source, entry.timestamp, entry.origin_site
            )
            if self.record_checks:
                self.checks.append(
                    CheckRecord(
                        site=0,
                        new_op_id=message.op_id,
                        buffered_op_id=entry.op_id,
                        verdict=verdict,
                        new_timestamp=message.timestamp.as_paper_list(),
                        buffered_timestamp=list(entry.timestamp.as_paper_list()),
                    )
                )
            if self.verify_with_oracle and self.event_log is not None:
                # Formula (6)/(7) is defined over the operations as
                # "originally generated at sites x and y": compare the
                # original client operations' generation clocks.
                oracle = vc_concurrent(
                    self.event_log.generation_clock(message.op_id),
                    self.event_log.generation_clock(entry.source_op_id),
                )
                if oracle != verdict:
                    raise ConsistencyError(
                        f"notifier: compressed verdict {verdict} != oracle {oracle} "
                        f"for ({message.op_id}, {entry.source_op_id})"
                    )
            if verdict:
                out.append(entry)
        return out

    def admit_client(self, client: "StarClient") -> None:
        """Admit a late joiner: grow ``SV_0`` and send the state snapshot.

        The snapshot covers every operation executed so far, so the
        joiner's acknowledgement horizon starts at ``SV_0.total()`` and
        nothing is pending for it; FIFO on the fresh channel guarantees
        the snapshot precedes any subsequent broadcast.
        """
        site_id = self.sv.add_site()
        if client.pid != site_id:
            raise ValueError(
                f"joiner must take the next site id {site_id}, got {client.pid}"
            )
        self.n_sites = site_id
        self.destinations.add(site_id)
        self.sent_to[site_id] = deque()
        self.acked[site_id] = self.sv.total()
        if self.tracer is not None:
            self.tracer.emit(
                TraceEventKind.SNAPSHOT, self.pid, peer=site_id, epoch=0, via="join",
            )
        self.send(
            site_id,
            SnapshotMessage(
                document=self.document,
                base_count=self.sv.total(),
                notifier_epoch=self.notifier_epoch,
            ),
            timestamp_bytes=0,
            kind="snapshot",
        )

    def _serve_resync(self, site: int, epoch: int) -> None:
        """Re-admit a crashed-and-restarted client.

        The snapshot covers everything executed at site 0, so nothing
        stays pending for the restarted site: its send window was
        already voided by the epoch bump, ``sent_to``/``acked`` restart
        at the snapshot horizon, and the snapshot itself goes out as
        seq 0 of the new epoch -- FIFO guarantees every later broadcast
        arrives after it, exactly as for a fresh joiner.

        ``base_count`` excludes the site's own operations (the notifier
        only ever broadcasts *other* sites' operations to it), and
        ``own_count`` hands back ``SV_0[site]`` so the client's local
        numbering resumes where the notifier's bookkeeping expects.
        """
        own = self.sv[site]
        base = self.sv.total() - own
        self.destinations.add(site)
        self.sent_to[site] = deque()
        self.acked[site] = base
        self.rel_stats.resyncs_served += 1
        origin_clock = None
        if self.event_log is not None:
            origin_clock = self.event_log.site_clock(self.pid)
        if self.tracer is not None:
            self.tracer.emit(
                TraceEventKind.SNAPSHOT, self.pid, peer=site, epoch=epoch,
                via="resync",
            )
        self.send(
            site,
            SnapshotMessage(
                document=self.document,
                base_count=base,
                own_count=own,
                origin_clock=origin_clock,
                notifier_epoch=self.notifier_epoch,
            ),
            timestamp_bytes=0,
            kind="snapshot",
        )

    # -- crash & failover --------------------------------------------------------

    def crash(self) -> None:
        """The centre goes down, permanently.

        Unlike a client crash there is no restart path: recovery is by
        successor election and promotion (see
        :mod:`repro.editor.failover`).  State is deliberately left in
        place -- it is dead weight, useful only to post-mortem tests.
        """
        if self.transport.reliability is None:
            raise RuntimeError("crash injection requires the reliability protocol")
        self.transport.go_down()
        if self.tracer is not None:
            self.tracer.emit(
                TraceEventKind.CRASHED, self.pid, epoch=self.notifier_epoch,
            )

    @classmethod
    def promoted_from(
        cls,
        client: "StarClient",
        notifier_epoch: int,
        contributions: dict[int, StateContribution | None],
        n_sites: int,
    ) -> "StarNotifier":
        """Build the epoch-``notifier_epoch`` notifier from a successor client.

        The successor's replica is the promotion baseline; ``SV_0`` is
        reconstructed from the successor's per-origin execution counts
        (``SV_0[i]`` = operations from site ``i`` embodied in the
        baseline, with the successor's own column taken from its
        ``SV_i[2]``).  The new notifier *adopts* the client's transport
        and outgoing channels -- the star's spokes deliver to the same
        process, whose editor logic has changed role.  Contributions are
        cross-checked against the baseline to account for operations the
        dead centre acknowledged but never relayed (``failover_losses``);
        each contributing member is then re-admitted through a failover
        snapshot.
        """
        notifier = cls(
            client.sim,
            n_sites,
            ot_type_name=client.ot.name,
            initial_state=client.document,
            event_log=client.event_log,
            verify_with_oracle=client.verify_with_oracle,
            transform_enabled=client.transform_enabled,
            record_checks=client.record_checks,
            reliability=client.transport.reliability,
            tracer=client.tracer,
            pid=client.pid,
            notifier_epoch=notifier_epoch,
            adopt_transport=client.transport,
        )
        # Share the spoke channels: outgoing sends must reach the wires
        # the topology attached to the successor process.
        notifier.out_channels = client.out_channels
        # Role transfer keeps the latency observatory armed: the
        # promoted centre stamps its own local edits and keeps feeding
        # the live end-to-end gauge across the epoch boundary.
        notifier.span_clock = client.span_clock
        notifier.e2e_window = client.e2e_window
        for site in range(1, n_sites + 1):
            if site == client.pid:
                notifier.sv.counts[site - 1] = client.sv.generated_locally
            else:
                notifier.sv.counts[site - 1] = client._received_per_origin.get(site, 0)
        # Nothing is in flight to anyone: every member restarts at the
        # snapshot horizon, exactly as in the resync path.
        for site in range(1, n_sites + 1):
            notifier.sent_to[site] = deque()
            notifier.acked[site] = notifier.sv.total() - notifier.sv[site]
        notifier.destinations = set()
        notifier.incorporated = frozenset(client._incorporated)
        for site, contribution in contributions.items():
            if contribution is None or site == client.pid:
                continue
            # Ops the dead centre acknowledged to their origin (they left
            # its pending list) but that never made it into the baseline
            # are rolled back by the failover; account for them.
            acked_at_old = contribution.generated_locally - len(contribution.pending)
            missing = acked_at_old - notifier.sv[site]
            if missing > 0:
                notifier.failover_losses += missing
        notifier.rel_stats.promotions += 1
        if notifier.tracer is not None:
            notifier.tracer.emit(
                TraceEventKind.PROMOTED, notifier.pid, epoch=notifier_epoch,
            )
            notifier.tracer.metrics.inc("failover.lost_ops", notifier.failover_losses)
        for site in sorted(contributions):
            if contributions[site] is not None and site != client.pid:
                notifier._serve_failover_snapshot(site)
        return notifier

    def _serve_failover_snapshot(self, site: int) -> None:
        """Re-admit a survivor under the new epoch (the resync path,
        plus the dedup set members replay their stashed pendings against)."""
        own = self.sv[site]
        base = self.sv.total() - own
        self.destinations.add(site)
        self.sent_to[site] = deque()
        self.acked[site] = base
        self.rel_stats.resyncs_served += 1
        origin_clock = None
        if self.event_log is not None:
            origin_clock = self.event_log.site_clock(self.pid)
        if self.tracer is not None:
            self.tracer.emit(
                TraceEventKind.SNAPSHOT, self.pid, peer=site,
                epoch=self.notifier_epoch, via="failover",
            )
        self.send(
            site,
            SnapshotMessage(
                document=self.document,
                base_count=base,
                own_count=own,
                origin_clock=origin_clock,
                notifier_epoch=self.notifier_epoch,
                incorporated=self.incorporated,
            ),
            timestamp_bytes=0,
            kind="snapshot",
        )

    def collect_garbage(self) -> int:
        """Prune HB entries no longer pending for any destination."""
        needed = {pending.op_id for entries in self.sent_to.values() for pending in entries}
        return self.hb.garbage_collect(lambda entry: entry.op_id in needed)

    def clock_storage_ints(self) -> int:
        """Resident clock-state integers at the notifier: N."""
        return self.sv.storage_ints()

    def local_ops_generated(self) -> int:
        """Operations the centre originated, as the telemetry gauge.

        The notifier generates one transformed operation per ingested
        client operation (plus any edits of its own), all of which it
        executes locally -- so its generation count *is* its execution
        count, unlike a spoke's.
        """
        return len(self.executed_op_ids)
