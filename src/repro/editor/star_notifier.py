"""The star editor's notifier role (site 0, the centre of the star).

The notifier is an :class:`~repro.session.EditorEndpoint` like the
clients: it owns a transport rather than inheriting one.  On top of that
it maintains the full ``SV_0``; on receiving an operation from site
``x`` it determines the concurrent history entries with formula (7),
transforms the operation against them, executes it, and broadcasts the
*transformed* form to every other site with a per-destination compressed
timestamp (formulas 1-2).  This redefinition is what collapses the
causality relation to two dimensions.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.clocks.events import EventLog
from repro.clocks.vector import concurrent as vc_concurrent
from repro.core.concurrency import notifier_concurrent
from repro.core.history import HistoryBuffer, HistoryEntry
from repro.core.state_vector import NotifierStateVector
from repro.core.timestamp import CompressedTimestamp, OriginKind
from repro.editor.messages import OpMessage, ResyncRequest, SnapshotMessage
from repro.editor.star_client import execute_remote
from repro.net.reliability import ReliabilityConfig
from repro.net.simulator import Simulator
from repro.net.transport import Envelope
from repro.obs.tracer import TraceEventKind, Tracer
from repro.ot.types import get_type
from repro.session import CheckRecord, ConsistencyError, EditorEndpoint

if TYPE_CHECKING:
    from repro.editor.star_client import StarClient


@dataclass
class PendingOp:
    """A broadcast operation awaiting acknowledgement by one destination.

    Each destination holds its **own** record: the form evolves by
    inclusion transformation against that destination's incoming
    operations only, keeping the server-to-destination transformation
    path context-valid (the Jupiter bridge invariant).  Sharing one
    object across destinations would let one client's traffic corrupt
    another's path.
    """

    op: Any
    op_id: str
    origin_site: int


class StarNotifier(EditorEndpoint):
    """Site 0: the notifier at the centre of the star."""

    def __init__(
        self,
        sim: Simulator,
        n_sites: int,
        ot_type_name: str = "text-positional",
        initial_state: Any = None,
        event_log: EventLog | None = None,
        verify_with_oracle: bool = False,
        transform_enabled: bool = True,
        record_checks: bool = True,
        reliability: ReliabilityConfig | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        super().__init__(sim, 0, reliability, tracer)
        if n_sites < 1:
            raise ValueError(f"need at least one collaborating site, got {n_sites}")
        self.n_sites = n_sites
        self.ot = get_type(ot_type_name)
        self.document = self.ot.initial() if initial_state is None else initial_state
        self.sv = NotifierStateVector(n_sites)
        self.hb = HistoryBuffer()
        # Per destination: broadcast operations the destination has not
        # yet acknowledged, each in its per-destination form.  Every ack
        # drops a prefix, so deques keep that O(acked) not O(n).
        self.sent_to: dict[int, deque[PendingOp]] = {
            i: deque() for i in range(1, n_sites + 1)
        }
        # How many entries have been dropped from each sent_to deque.
        self.acked: dict[int, int] = {i: 0 for i in range(1, n_sites + 1)}
        self.event_log = event_log
        self.verify_with_oracle = verify_with_oracle
        self.transform_enabled = transform_enabled
        self.record_checks = record_checks
        self.checks: list[CheckRecord] = []
        self.executed_op_ids: list[str] = []
        self.broadcast_log: list[tuple[str, int, CompressedTimestamp]] = []

    def _handle_app_message(self, envelope: Envelope) -> None:
        if isinstance(envelope.payload, ResyncRequest):
            self._serve_resync(envelope.source, envelope.payload.epoch)
            return
        message: OpMessage = envelope.payload
        source = envelope.source
        ts = message.timestamp
        diagnostics = self.record_checks or self.verify_with_oracle
        concurrent_entries = (
            self._concurrency_pass(message, source) if diagnostics else None
        )
        # FIFO acknowledgement: the source has seen the first T[1]
        # operations ever sent to it; drop them from its pending list.
        already = self.acked[source]
        to_drop = ts.first - already
        if to_drop < 0:
            raise ConsistencyError(
                f"notifier: site {source} acknowledged {ts.first} < previously "
                f"acknowledged {already} (FIFO violated?)"
            )
        for _ in range(to_drop):
            self.sent_to[source].popleft()
        self.acked[source] = ts.first
        if self.transform_enabled and concurrent_entries is not None:
            expected = [entry.op_id for entry in self.sent_to[source]]
            actual = [entry.op_id for entry in concurrent_entries]
            if expected != actual:
                raise ConsistencyError(
                    f"notifier: formula (7) concurrent set {actual} != pending "
                    f"set {expected} for {message.op_id} from site {source}"
                )
        new_op = message.op
        if self.transform_enabled:
            for entry in self.sent_to[source]:
                new_op, updated = self.ot.transform(
                    new_op, entry.op, source < entry.origin_site
                )
                entry.op = updated
        # Execute; the transformed operation becomes a *new* operation
        # "generated at site 0" (paper Section 3.1 / Fig. 3).
        self.document = execute_remote(
            self.ot, self.document, new_op, self.transform_enabled
        )
        self.sv.record_execution_from(source)
        transformed_id = f"{message.op_id}'"
        self.executed_op_ids.append(transformed_id)
        if self.event_log is not None:
            self.event_log.execute(0, message.op_id)
            self.event_log.generate(0, transformed_id)
        if self.tracer is not None:
            # Execution of the incoming form, then generation of the
            # transformed form "at site 0" -- mirroring the event log.
            self.tracer.emit(
                TraceEventKind.EXECUTED, 0, op_id=message.op_id,
                timestamp=tuple(ts.as_paper_list()),
            )
            self.tracer.emit(
                TraceEventKind.TRANSFORMED, 0, op_id=transformed_id,
                source_op_id=message.op_id,
                timestamp=tuple(self.sv.full_timestamp().as_paper_list()),
            )
        self.hb.append(
            HistoryEntry(
                op=new_op,
                timestamp=self.sv.full_timestamp(),
                origin_site=source,
                origin_kind=OriginKind.FROM_CLIENT,
                op_id=transformed_id,
                executed_at=self.sim.now,
                source_op_id=message.op_id,
            )
        )
        # Broadcast the transformed form to every other site with a
        # per-destination compressed timestamp (formulas 1-2).
        for dest in range(1, self.n_sites + 1):
            if dest == source:
                continue
            dest_ts = self.sv.compress_for_destination(dest)
            self.broadcast_log.append((transformed_id, dest, dest_ts))
            out = OpMessage(
                op=new_op,
                timestamp=dest_ts,
                origin_site=source,
                op_id=transformed_id,
                source_op_id=message.op_id,
            )
            self.send(dest, out, timestamp_bytes=dest_ts.size_bytes())
            self.sent_to[dest].append(
                PendingOp(op=new_op, op_id=transformed_id, origin_site=source)
            )

    def _concurrency_pass(self, message: OpMessage, source: int) -> list[HistoryEntry]:
        """Run formula (7) over ``HB_0``; record and (optionally) verify."""
        out: list[HistoryEntry] = []
        for entry in self.hb:
            assert entry.origin_kind is OriginKind.FROM_CLIENT
            verdict = notifier_concurrent(
                message.timestamp, source, entry.timestamp, entry.origin_site
            )
            if self.record_checks:
                self.checks.append(
                    CheckRecord(
                        site=0,
                        new_op_id=message.op_id,
                        buffered_op_id=entry.op_id,
                        verdict=verdict,
                        new_timestamp=message.timestamp.as_paper_list(),
                        buffered_timestamp=list(entry.timestamp.as_paper_list()),
                    )
                )
            if self.verify_with_oracle and self.event_log is not None:
                # Formula (6)/(7) is defined over the operations as
                # "originally generated at sites x and y": compare the
                # original client operations' generation clocks.
                oracle = vc_concurrent(
                    self.event_log.generation_clock(message.op_id),
                    self.event_log.generation_clock(entry.source_op_id),
                )
                if oracle != verdict:
                    raise ConsistencyError(
                        f"notifier: compressed verdict {verdict} != oracle {oracle} "
                        f"for ({message.op_id}, {entry.source_op_id})"
                    )
            if verdict:
                out.append(entry)
        return out

    def admit_client(self, client: "StarClient") -> None:
        """Admit a late joiner: grow ``SV_0`` and send the state snapshot.

        The snapshot covers every operation executed so far, so the
        joiner's acknowledgement horizon starts at ``SV_0.total()`` and
        nothing is pending for it; FIFO on the fresh channel guarantees
        the snapshot precedes any subsequent broadcast.
        """
        site_id = self.sv.add_site()
        if client.pid != site_id:
            raise ValueError(
                f"joiner must take the next site id {site_id}, got {client.pid}"
            )
        self.n_sites = site_id
        self.sent_to[site_id] = deque()
        self.acked[site_id] = self.sv.total()
        if self.tracer is not None:
            self.tracer.emit(TraceEventKind.SNAPSHOT, 0, peer=site_id, epoch=0)
        self.send(
            site_id,
            SnapshotMessage(document=self.document, base_count=self.sv.total()),
            timestamp_bytes=0,
            kind="snapshot",
        )

    def _serve_resync(self, site: int, epoch: int) -> None:
        """Re-admit a crashed-and-restarted client.

        The snapshot covers everything executed at site 0, so nothing
        stays pending for the restarted site: its send window was
        already voided by the epoch bump, ``sent_to``/``acked`` restart
        at the snapshot horizon, and the snapshot itself goes out as
        seq 0 of the new epoch -- FIFO guarantees every later broadcast
        arrives after it, exactly as for a fresh joiner.

        ``base_count`` excludes the site's own operations (the notifier
        only ever broadcasts *other* sites' operations to it), and
        ``own_count`` hands back ``SV_0[site]`` so the client's local
        numbering resumes where the notifier's bookkeeping expects.
        """
        own = self.sv[site]
        base = self.sv.total() - own
        self.sent_to[site] = deque()
        self.acked[site] = base
        self.rel_stats.resyncs_served += 1
        origin_clock = None
        if self.event_log is not None:
            origin_clock = self.event_log.site_clock(0)
        if self.tracer is not None:
            self.tracer.emit(TraceEventKind.SNAPSHOT, 0, peer=site, epoch=epoch)
        self.send(
            site,
            SnapshotMessage(
                document=self.document,
                base_count=base,
                own_count=own,
                origin_clock=origin_clock,
            ),
            timestamp_bytes=0,
            kind="snapshot",
        )

    def collect_garbage(self) -> int:
        """Prune HB entries no longer pending for any destination."""
        needed = {pending.op_id for entries in self.sent_to.values() for pending in entries}
        return self.hb.garbage_collect(lambda entry: entry.op_id in needed)

    def clock_storage_ints(self) -> int:
        """Resident clock-state integers at the notifier: N."""
        return self.sv.storage_ints()
