"""The star-topology group editor (Web-based REDUCE, paper Sections 2-4).

Roles
-----
* :class:`StarClient` -- a collaborating site ``i in 1..N``.  Executes
  local operations immediately (high responsiveness), timestamps them
  with its 2-element state vector ``SV_i`` and sends them to the
  notifier.  Incoming notifier operations are checked for concurrency
  against the history buffer with formula (5), transformed against the
  concurrent (i.e. not-yet-acknowledged local) operations, and executed.
* :class:`StarNotifier` -- site 0.  Maintains the full ``SV_0``; on
  receiving an operation from site ``x`` it determines the concurrent
  history entries with formula (7), transforms the operation against
  them, executes it, and broadcasts the *transformed* form to every
  other site with a per-destination compressed timestamp (formulas
  1-2).  This redefinition is what collapses the causality relation to
  two dimensions.
* :class:`StarSession` -- wires clients and notifier over
  :class:`repro.net.topology.StarTopology` and exposes experiment
  helpers (run, convergence check, wire statistics, event log).

Transformation discipline
-------------------------
The paper defers the transformation path to its references [14, 15]; we
use the standard symmetric treatment for star topologies: when an
incoming operation is transformed against a concurrent history
operation, the history operation is simultaneously inclusion-transformed
against the incoming one, so the buffer always reflects the current
document context.  Insert-position ties are broken by originating site
identifier (lower site wins), evaluated identically at both ends, which
makes the outcome site-independent -- the convergence property the
property-based tests exercise.

Ground truth
------------
Every generation/execution is recorded in a shared
:class:`repro.clocks.events.EventLog`.  With ``verify_with_oracle=True``
each compressed-timestamp concurrency verdict is asserted against full
vector clocks (paper formula 3) at check time; the integration tests run
entire random sessions this way.

Reliability under faults
------------------------
The formulas require FIFO channels; a faulty network (see
:mod:`repro.net.faults`) may lose or duplicate messages and clients may
crash.  When a session runs with a fault plan, every process speaks a
reliability protocol layered below the editor logic
(:class:`ReliableEndpoint`): messages travel in sequence-numbered
:class:`ReliablePacket` envelopes, the sender retransmits unacknowledged
packets with exponential backoff, and the receiver deduplicates by
``(source, seq)`` and releases packets to the editor strictly in
sequence order -- reconstructing exactly the FIFO stream formulas (5)
and (7) assume.  A crashed client loses all volatile state; on restart
it opens a new *epoch* (stale in-flight traffic from the previous
incarnation is discarded by epoch) and resynchronises through the
existing :class:`SnapshotMessage` path.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.clocks.events import EventLog
from repro.clocks.vector import concurrent as vc_concurrent
from repro.core.concurrency import client_concurrent, notifier_concurrent
from repro.core.history import HistoryBuffer, HistoryEntry
from repro.core.state_vector import ClientStateVector, NotifierStateVector
from repro.core.timestamp import CompressedTimestamp, OriginKind
from repro.net.channel import LatencyModel
from repro.net.faults import FaultPlan
from repro.net.process import SimProcess
from repro.net.simulator import Simulator
from repro.net.topology import StarTopology
from repro.net.transport import Envelope
from repro.ot.types import get_type


class ConsistencyError(AssertionError):
    """Raised when a compressed verdict disagrees with the oracle."""


class UndoError(RuntimeError):
    """Raised when the requested undo is not available."""


@dataclass(frozen=True)
class OpMessage:
    """The wire format of a propagated operation."""

    op: Any
    timestamp: CompressedTimestamp
    origin_site: int  # site the operation was originally generated at
    op_id: str
    source_op_id: str | None = None  # for notifier outputs: the input op


@dataclass(frozen=True)
class SnapshotMessage:
    """State transfer for a late-joining or recovering client.

    ``base_count`` is the number of notifier broadcasts the destination
    would have received so far (``sum_{j != dest} SV_0[j]``); the client
    seeds ``SV_i[1]`` with it so the compressed-timestamp arithmetic
    (formulas 1-2, 5, 7) stays exact: the snapshot "delivers" those
    operations in bulk, and the FIFO channel guarantees every later
    broadcast arrives after it.  For crash recovery ``own_count``
    additionally restores ``SV_i[2]`` (``SV_0[dest]``: the destination's
    operations the notifier had executed), and ``origin_clock`` carries
    the notifier's ground-truth vector clock at snapshot time so the
    oracle stays exact across the state transfer.
    """

    document: Any
    base_count: int
    own_count: int = 0
    origin_clock: Any = None


@dataclass(frozen=True)
class ResyncRequest:
    """First message of a restarted client's new epoch: "send me state"."""

    epoch: int


@dataclass(frozen=True)
class ReliablePacket:
    """The reliability envelope wrapped around every editor message.

    ``seq`` numbers the sender's stream to this destination (``-1`` for
    pure acknowledgements, which are unsequenced); ``epoch`` identifies
    the client incarnation the packet belongs to; ``ack`` is cumulative:
    the highest seq the sender has received *in order* from the
    destination (``-1`` if none).
    """

    seq: int
    epoch: int
    ack: int
    payload: Any = None

    def __post_init__(self) -> None:
        if self.seq < -1 or self.ack < -1 or self.epoch < 0:
            raise ValueError(f"malformed packet: {self}")


@dataclass(frozen=True)
class ReliabilityConfig:
    """Retransmission parameters of the reliability protocol."""

    base_rto: float = 0.5  # initial retransmit timeout (virtual time)
    max_rto: float = 8.0  # backoff ceiling
    backoff: float = 2.0  # timeout multiplier per retry round

    def __post_init__(self) -> None:
        if self.base_rto <= 0 or self.max_rto < self.base_rto or self.backoff < 1.0:
            raise ValueError(f"malformed reliability config: {self}")


@dataclass
class ReliabilityStats:
    """Per-endpoint protocol counters (aggregated by the fault report)."""

    sent: int = 0
    retransmits: int = 0
    acks_sent: int = 0
    duplicates_discarded: int = 0
    stale_epoch_discarded: int = 0
    out_of_order_held: int = 0
    dropped_while_crashed: int = 0
    lost_local_edits: int = 0
    recoveries: int = 0  # clients only: completed crash restarts
    resyncs_served: int = 0  # notifier only: recovery snapshots sent


@dataclass
class _PeerLink:
    """One endpoint's reliability state toward one peer."""

    epoch: int = 0
    send_seq: int = 0  # next outgoing seq
    unacked: dict[int, tuple[Any, int, str]] = field(default_factory=dict)
    rto: float = 0.0
    timer: Any = None  # pending retransmit event, if armed
    recv_next: int = 0  # next seq to release to the editor
    holdback: dict[int, Envelope] = field(default_factory=dict)


class ReliableEndpoint(SimProcess):
    """A :class:`SimProcess` with an optional reliability layer.

    With ``reliability=None`` (the default everywhere faults are not
    injected) ``send``/``on_message`` pass straight through and nothing
    below this line runs -- the perfect-network behaviour and wire
    accounting are byte-for-byte unchanged.  With a config, every
    outgoing message is sequenced, retransmitted until acknowledged and
    released to :meth:`_handle_app_message` strictly in order.
    """

    def __init__(
        self, sim: Simulator, pid: int, reliability: ReliabilityConfig | None = None
    ) -> None:
        super().__init__(sim, pid)
        self.reliability = reliability
        self.rel_stats = ReliabilityStats()
        self._links: dict[int, _PeerLink] = {}
        # Audit trace: per source, the (epoch, seq) of every packet
        # actually handed to the editor, in release order.  Deliberately
        # not link state (and not cleared on crash): the in-order audit
        # must survive link resets and stay independent of recv_next /
        # holdback, the very mechanism it checks.
        self._release_trace: dict[int, list[tuple[int, int]]] = {}
        self._crashed = False

    # -- sending ---------------------------------------------------------------

    def _link(self, peer: int) -> _PeerLink:
        if peer not in self._links:
            rto = self.reliability.base_rto if self.reliability else 0.0
            self._links[peer] = _PeerLink(rto=rto)
        return self._links[peer]

    def send(self, dest: int, payload: Any, timestamp_bytes: int = 0, kind: str = "op") -> None:
        if self.reliability is None:
            super().send(dest, payload, timestamp_bytes, kind)
            return
        link = self._link(dest)
        seq = link.send_seq
        link.send_seq += 1
        link.unacked[seq] = (payload, timestamp_bytes, kind)
        self.rel_stats.sent += 1
        self._transmit(dest, link, seq, payload, timestamp_bytes, kind)
        self._arm_timer(dest, link)

    def _transmit(
        self, dest: int, link: _PeerLink, seq: int, payload: Any, ts_bytes: int, kind: str
    ) -> None:
        packet = ReliablePacket(seq=seq, epoch=link.epoch, ack=link.recv_next - 1, payload=payload)
        SimProcess.send(self, dest, packet, timestamp_bytes=ts_bytes, kind=kind)

    def _arm_timer(self, dest: int, link: _PeerLink) -> None:
        if link.timer is None and link.unacked:
            link.timer = self.sim.schedule_after(link.rto, lambda: self._on_timer(dest, link))

    def _on_timer(self, dest: int, link: _PeerLink) -> None:
        link.timer = None
        # The link may have been replaced by a crash or an epoch bump
        # since this timer was armed; a stale timer must not touch it.
        if self._crashed or self._links.get(dest) is not link or not link.unacked:
            return
        for seq in sorted(link.unacked):
            payload, ts_bytes, kind = link.unacked[seq]
            self.rel_stats.retransmits += 1
            self._transmit(dest, link, seq, payload, ts_bytes, kind)
        link.rto = min(link.rto * self.reliability.backoff, self.reliability.max_rto)
        self._arm_timer(dest, link)

    # -- receiving -------------------------------------------------------------

    def on_message(self, envelope: Envelope) -> None:
        if self._crashed:
            self.rel_stats.dropped_while_crashed += 1
            return
        payload = envelope.payload
        if self.reliability is None or not isinstance(payload, ReliablePacket):
            self._handle_app_message(envelope)
            return
        self._receive_packet(envelope, payload)

    def _receive_packet(self, envelope: Envelope, packet: ReliablePacket) -> None:
        source = envelope.source
        link = self._link(source)
        if packet.epoch < link.epoch:
            self.rel_stats.stale_epoch_discarded += 1
            return
        if packet.epoch > link.epoch:
            # The peer restarted into a new incarnation: everything from
            # the old one -- send window, reorder buffer -- is void.
            link = self._reset_link(source, packet.epoch)
        if packet.ack >= 0:
            self._process_ack(source, link, packet.ack)
        if packet.seq < 0:  # pure acknowledgement
            return
        if packet.seq < link.recv_next:
            # Duplicate of something already released: re-ack so the
            # sender stops retransmitting (its ack may have been lost).
            self.rel_stats.duplicates_discarded += 1
            self._send_ack(source, link)
            return
        if packet.seq > link.recv_next:
            # A gap: hold the packet back until retransmission fills it.
            # Releasing it now would reorder the stream and break the
            # FIFO precondition of formulas (5) and (7).
            if packet.seq in link.holdback:
                self.rel_stats.duplicates_discarded += 1
            else:
                link.holdback[packet.seq] = envelope
                self.rel_stats.out_of_order_held += 1
            self._send_ack(source, link)
            return
        self._release(link, envelope)
        while link.recv_next in link.holdback:
            self._release(link, link.holdback.pop(link.recv_next))
        self._send_ack(source, link)

    def _release(self, link: _PeerLink, envelope: Envelope) -> None:
        """Hand one in-sequence packet's payload to the editor."""
        link.recv_next += 1
        packet: ReliablePacket = envelope.payload
        self._release_trace.setdefault(envelope.source, []).append(
            (packet.epoch, packet.seq)
        )
        self._handle_app_message(
            Envelope(
                source=envelope.source,
                dest=envelope.dest,
                payload=packet.payload,
                timestamp_bytes=envelope.timestamp_bytes,
                kind=envelope.kind,
                message_id=envelope.message_id,
            )
        )

    def _send_ack(self, dest: int, link: _PeerLink) -> None:
        self.rel_stats.acks_sent += 1
        packet = ReliablePacket(seq=-1, epoch=link.epoch, ack=link.recv_next - 1)
        SimProcess.send(self, dest, packet, timestamp_bytes=0, kind="ack")

    def _process_ack(self, dest: int, link: _PeerLink, ack: int) -> None:
        acked = [seq for seq in link.unacked if seq <= ack]
        for seq in acked:
            del link.unacked[seq]
        if acked:
            link.rto = self.reliability.base_rto  # progress: reset backoff
            # Restart the retransmit clock: the surviving packets were all
            # sent more recently than the one just acknowledged, so the
            # old deadline would fire spuriously (a full RTO must elapse
            # *without progress* before we suspect loss).
            if link.timer is not None:
                self.sim.cancel(link.timer)
                link.timer = None
            self._arm_timer(dest, link)
        elif not link.unacked and link.timer is not None:
            self.sim.cancel(link.timer)
            link.timer = None

    def _reset_link(self, peer: int, epoch: int) -> _PeerLink:
        """Void the link state and start the given epoch from seq 0."""
        link = _PeerLink(
            epoch=epoch, rto=self.reliability.base_rto if self.reliability else 0.0
        )
        old = self._links.get(peer)
        if old is not None and old.timer is not None:
            self.sim.cancel(old.timer)
        self._links[peer] = link
        return link

    def delivered_in_order(self) -> bool:
        """Audit: the editor received a gap-free in-order stream.

        Replays the trace of ``(epoch, seq)`` pairs actually handed to
        :meth:`_handle_app_message` (recorded at release time from the
        packets themselves, not from the holdback machinery): per
        source, epochs must never regress and each epoch's sequence
        numbers must be exactly ``0, 1, 2, ...`` in order.  Any drop
        leaking through, duplicate release, swap, or stale-epoch release
        makes this False.
        """
        for trace in self._release_trace.values():
            current_epoch, expected_seq = -1, 0
            for epoch, seq in trace:
                if epoch < current_epoch:
                    return False
                if epoch > current_epoch:
                    current_epoch, expected_seq = epoch, 0
                if seq != expected_seq:
                    return False
                expected_seq += 1
        return True

    def _handle_app_message(self, envelope: Envelope) -> None:
        """Editor-level message handling; override in subclasses."""
        raise NotImplementedError


@dataclass
class PendingOp:
    """A broadcast operation awaiting acknowledgement by one destination.

    Each destination holds its **own** record: the form evolves by
    inclusion transformation against that destination's incoming
    operations only, keeping the server-to-destination transformation
    path context-valid (the Jupiter bridge invariant).  Sharing one
    object across destinations would let one client's traffic corrupt
    another's path.
    """

    op: Any
    op_id: str
    origin_site: int


@dataclass
class CheckRecord:
    """One concurrency check, for diagnostics and Fig. 3 assertions."""

    site: int
    new_op_id: str
    buffered_op_id: str
    verdict: bool
    new_timestamp: list[int]
    buffered_timestamp: list[int]



def _execute_remote(ot: Any, state: Any, op: Any, transform_enabled: bool) -> Any:
    """Execute a remote operation, best-effort when transformation is off.

    The transformation-off mode exists to reproduce the paper's Fig. 2
    failure behaviour; a naive replica clamps out-of-range positions
    instead of crashing (see :func:`repro.ot.operations.apply_clamped`).
    """
    if transform_enabled:
        return ot.apply(state, op)
    from repro.ot.operations import Operation, apply_clamped

    if isinstance(op, Operation) and isinstance(state, str):
        return apply_clamped(state, op)
    return ot.apply(state, op)


class StarClient(ReliableEndpoint):
    """A collaborating site ``i != 0``."""

    def __init__(
        self,
        sim: Simulator,
        site_id: int,
        ot_type_name: str = "text-positional",
        initial_state: Any = None,
        event_log: EventLog | None = None,
        verify_with_oracle: bool = False,
        transform_enabled: bool = True,
        record_checks: bool = True,
        joining: bool = False,
        reliability: ReliabilityConfig | None = None,
    ) -> None:
        if site_id <= 0:
            raise ValueError(f"client site ids are 1..N, got {site_id}")
        super().__init__(sim, site_id, reliability)
        self.ot = get_type(ot_type_name)
        self.document = self.ot.initial() if initial_state is None else initial_state
        self.sv = ClientStateVector(site_id)
        self.hb = HistoryBuffer()
        # Local operations not yet reflected in a notifier timestamp; each
        # element is the HistoryEntry so re-transformation updates the HB.
        # Acknowledgement pops from the left on every arrival: a deque.
        self.pending: deque[HistoryEntry] = deque()
        self.event_log = event_log
        self.verify_with_oracle = verify_with_oracle
        self.transform_enabled = transform_enabled
        # Diagnostic trace of every concurrency check.  O(ops * HB) memory:
        # keep it on for scenario replays and tests, off for long sessions.
        self.record_checks = record_checks
        self.checks: list[CheckRecord] = []
        self.executed_op_ids: list[str] = []
        # Late joiners start inactive and are activated by the snapshot.
        self.active = not joining
        # Per-client counter: op ids must not leak across sessions in one
        # process, or replays stop being reproducible.  Survives crashes
        # (ids are ground-truth bookkeeping, not volatile editor state).
        self._op_ids = itertools.count(1)
        # Undo bookkeeping, independent of the HB so garbage collection
        # cannot take a legitimately undoable operation away.
        self._last_local_entry: HistoryEntry | None = None
        self._last_exec_was_local = False
        self.crash_count = 0
        self._recovering = False

    # -- local editing -------------------------------------------------------

    def generate(self, op: Any, op_id: str | None = None) -> str | None:
        """Generate, execute and propagate a local operation.

        Returns the operation id.  Per the paper: execute immediately,
        increment ``SV_i[2]``, timestamp with the current ``SV_i``,
        propagate to site 0, and buffer in the local HB.  While the
        client is crashed or awaiting its recovery snapshot the edit is
        dropped (returns ``None``).
        """
        if not self.active:
            if self._crashed or self._recovering:
                # A user edit during an outage is simply lost, like
                # keystrokes into a dead terminal; count it and move on.
                self.rel_stats.lost_local_edits += 1
                return None
            raise RuntimeError(
                f"site {self.pid} has not received its join snapshot yet"
            )
        op_id = op_id or f"c{self.pid}_{next(self._op_ids)}"
        inverse = None
        invert = getattr(self.ot, "invert", None)
        if invert is not None:
            try:
                inverse = invert(self.document, op)
            except (TypeError, ValueError):
                inverse = None  # op shape the type cannot invert
        self.document = self.ot.apply(self.document, op)
        self.sv.record_local_execution()
        ts = self.sv.timestamp()
        entry = HistoryEntry(
            op=op,
            timestamp=ts,
            origin_site=self.pid,
            origin_kind=OriginKind.LOCAL,
            op_id=op_id,
            executed_at=self.sim.now,
            inverse=inverse,
        )
        self.hb.append(entry)
        self.pending.append(entry)
        self.executed_op_ids.append(op_id)
        self._last_local_entry = entry
        self._last_exec_was_local = True
        if self.event_log is not None:
            self.event_log.generate(self.pid, op_id)
        message = OpMessage(op=op, timestamp=ts, origin_site=self.pid, op_id=op_id)
        self.send(0, message, timestamp_bytes=ts.size_bytes())
        return op_id

    # -- receiving from the notifier ------------------------------------------

    def _handle_app_message(self, envelope: Envelope) -> None:
        if isinstance(envelope.payload, SnapshotMessage):
            self._install_snapshot(envelope.payload)
            return
        if not self.active:
            raise ConsistencyError(
                f"site {self.pid} received an operation before its snapshot "
                "(FIFO violated?)"
            )
        message: OpMessage = envelope.payload
        ts = message.timestamp
        # The full formula-(5) sweep over the HB is O(|HB|) per arrival
        # and only needed when recording or oracle-verifying checks; the
        # FIFO analysis (see _concurrency_pass) proves the concurrent
        # set equals the unacknowledged-pending set, which the fast path
        # uses directly.  The slow path cross-checks the two.
        diagnostics = self.record_checks or self.verify_with_oracle
        concurrent_entries = self._concurrency_pass(message) if diagnostics else None
        # FIFO acknowledgement: T[2] local operations are now reflected
        # in the notifier's state; they stop being "pending".
        while self.pending and self.pending[0].timestamp.second <= ts.second:
            self.pending.popleft()
        if self.transform_enabled and concurrent_entries is not None:
            expected = [entry.op_id for entry in self.pending]
            actual = [entry.op_id for entry in concurrent_entries]
            if expected != actual:
                raise ConsistencyError(
                    f"site {self.pid}: formula (5) concurrent set {actual} != "
                    f"pending set {expected} for {message.op_id}"
                )
        new_op = message.op
        if self.transform_enabled:
            for entry in self.pending:
                new_op, updated = self.ot.transform(
                    new_op, entry.op, message.origin_site < entry.origin_site
                )
                entry.op = updated
        self.document = _execute_remote(
            self.ot, self.document, new_op, self.transform_enabled
        )
        self.sv.record_remote_execution()
        self.hb.append(
            HistoryEntry(
                op=new_op,
                timestamp=ts,
                origin_site=message.origin_site,
                origin_kind=OriginKind.FROM_CENTER,
                op_id=message.op_id,
                executed_at=self.sim.now,
            )
        )
        self.executed_op_ids.append(message.op_id)
        # A remote execution invalidates undo: the stored inverse is no
        # longer defined on the current document.
        self._last_exec_was_local = False
        if self.event_log is not None:
            self.event_log.execute(self.pid, message.op_id)

    def _concurrency_pass(self, message: OpMessage) -> list[HistoryEntry]:
        """Run formula (5) over the HB; record and (optionally) verify."""
        out: list[HistoryEntry] = []
        for entry in self.hb:
            verdict = client_concurrent(message.timestamp, entry.timestamp, entry.origin_kind)
            if self.record_checks:
                self.checks.append(
                    CheckRecord(
                        site=self.pid,
                        new_op_id=message.op_id,
                        buffered_op_id=entry.op_id,
                        verdict=verdict,
                        new_timestamp=message.timestamp.as_paper_list(),
                        buffered_timestamp=list(entry.timestamp.as_paper_list()),
                    )
                )
            if self.verify_with_oracle and self.event_log is not None:
                oracle = vc_concurrent(
                    self.event_log.generation_clock(message.op_id),
                    self.event_log.generation_clock(entry.op_id),
                )
                if oracle != verdict:
                    raise ConsistencyError(
                        f"site {self.pid}: compressed verdict {verdict} != oracle "
                        f"{oracle} for ({message.op_id}, {entry.op_id})"
                    )
            if verdict:
                out.append(entry)
        return out

    def undo_last(self) -> str:
        """Undo this site's most recent operation (undo-as-new-operation).

        Available while the operation is still the site's latest
        execution: its stored inverse is then defined on the current
        document, so the undo is generated and propagated like any other
        local operation -- remote sites need no special handling, and
        concurrent remote operations are transformed against the undo
        exactly like against an ordinary edit.

        Raises :class:`UndoError` if the last executed operation was not
        a local one (a remote operation arrived since -- the inverse's
        context is gone) or the OT type does not support inversion.

        The undoable entry is tracked independently of the HB:
        ``collect_garbage`` may prune the site's latest local entry (it
        stops being *pending* the moment the notifier acknowledges it)
        but the operation remains perfectly undoable -- the inverse is
        defined on the current document as long as nothing remote has
        executed since.
        """
        entry = self._last_local_entry
        if entry is None:
            raise UndoError(f"site {self.pid} has nothing to undo")
        if not self._last_exec_was_local:
            raise UndoError(
                f"site {self.pid}: a remote operation executed after the last "
                "local one; undo context is gone"
            )
        if entry.inverse is None:
            raise UndoError(
                f"OT type {self.ot.name!r} does not support inversion"
            )
        return self.generate(entry.inverse)

    def _install_snapshot(self, snapshot: SnapshotMessage) -> None:
        """Adopt the notifier's state and seed the compressed clock.

        ``SV_i[1] := base_count``: the snapshot stands in for the first
        ``base_count`` operations of the notifier's stream, so all later
        timestamp arithmetic lines up with clients that were present from
        the start.  A recovering client additionally restores
        ``SV_i[2] := own_count`` -- the notifier's count of this site's
        operations -- so post-restart timestamps continue the numbering
        the notifier's formula-(7) bookkeeping expects.
        """
        if self.active:
            raise ConsistencyError(f"site {self.pid} received a second snapshot")
        self.document = snapshot.document
        if self._recovering:
            self.sv = ClientStateVector(
                self.pid,
                received_from_center=snapshot.base_count,
                generated_locally=snapshot.own_count,
            )
            self._recovering = False
            self.rel_stats.recoveries += 1
            if self.event_log is not None and snapshot.origin_clock is not None:
                self.event_log.absorb_snapshot(self.pid, snapshot.origin_clock)
        else:
            self.sv.received_from_center = snapshot.base_count
        self.active = True

    # -- crash / recovery -------------------------------------------------------

    def crash(self) -> None:
        """Lose all volatile state; messages are dropped until restart."""
        if self.reliability is None:
            raise RuntimeError("crash injection requires the reliability protocol")
        self._crashed = True
        self.active = False
        self._recovering = False
        self.crash_count += 1
        self.document = self.ot.initial()
        self.sv = ClientStateVector(self.pid)
        self.hb = HistoryBuffer()
        self.pending = deque()
        self._last_local_entry = None
        self._last_exec_was_local = False
        # Reliability windows and reorder buffers are volatile too.
        for link in self._links.values():
            if link.timer is not None:
                self.sim.cancel(link.timer)
        self._links = {}

    def restart(self) -> None:
        """Come back up and resynchronise through the snapshot path.

        Opens epoch ``crash_count``: the notifier voids the previous
        incarnation's link state when it sees the higher epoch, so stale
        in-flight traffic can never corrupt the restarted session.  The
        resync request itself travels reliably (seq 0 of the new epoch),
        so it survives drops like any other message.
        """
        if not self._crashed:
            raise RuntimeError(f"site {self.pid} is not crashed")
        self._crashed = False
        self._recovering = True
        self._reset_link(0, self.crash_count)
        self.send(0, ResyncRequest(epoch=self.crash_count), timestamp_bytes=0, kind="resync")

    # -- maintenance -----------------------------------------------------------

    def collect_garbage(self) -> int:
        """Prune HB entries that can never again test concurrent.

        Under FIFO, FROM_CENTER entries never satisfy formula (5), and a
        LOCAL entry stops mattering once acknowledged (it left
        ``pending``).  Returns the number of entries removed.
        """
        pending_ids = {entry.op_id for entry in self.pending}
        return self.hb.garbage_collect(lambda entry: entry.op_id in pending_ids)

    def clock_storage_ints(self) -> int:
        """Resident clock-state integers: the paper's constant 2."""
        return self.sv.storage_ints()


class StarNotifier(ReliableEndpoint):
    """Site 0: the notifier at the centre of the star."""

    def __init__(
        self,
        sim: Simulator,
        n_sites: int,
        ot_type_name: str = "text-positional",
        initial_state: Any = None,
        event_log: EventLog | None = None,
        verify_with_oracle: bool = False,
        transform_enabled: bool = True,
        record_checks: bool = True,
        reliability: ReliabilityConfig | None = None,
    ) -> None:
        super().__init__(sim, 0, reliability)
        if n_sites < 1:
            raise ValueError(f"need at least one collaborating site, got {n_sites}")
        self.n_sites = n_sites
        self.ot = get_type(ot_type_name)
        self.document = self.ot.initial() if initial_state is None else initial_state
        self.sv = NotifierStateVector(n_sites)
        self.hb = HistoryBuffer()
        # Per destination: broadcast operations the destination has not
        # yet acknowledged, each in its per-destination form.  Every ack
        # drops a prefix, so deques keep that O(acked) not O(n).
        self.sent_to: dict[int, deque[PendingOp]] = {
            i: deque() for i in range(1, n_sites + 1)
        }
        # How many entries have been dropped from each sent_to deque.
        self.acked: dict[int, int] = {i: 0 for i in range(1, n_sites + 1)}
        self.event_log = event_log
        self.verify_with_oracle = verify_with_oracle
        self.transform_enabled = transform_enabled
        self.record_checks = record_checks
        self.checks: list[CheckRecord] = []
        self.executed_op_ids: list[str] = []
        self.broadcast_log: list[tuple[str, int, CompressedTimestamp]] = []

    def _handle_app_message(self, envelope: Envelope) -> None:
        if isinstance(envelope.payload, ResyncRequest):
            self._serve_resync(envelope.source)
            return
        message: OpMessage = envelope.payload
        source = envelope.source
        ts = message.timestamp
        diagnostics = self.record_checks or self.verify_with_oracle
        concurrent_entries = (
            self._concurrency_pass(message, source) if diagnostics else None
        )
        # FIFO acknowledgement: the source has seen the first T[1]
        # operations ever sent to it; drop them from its pending list.
        already = self.acked[source]
        to_drop = ts.first - already
        if to_drop < 0:
            raise ConsistencyError(
                f"notifier: site {source} acknowledged {ts.first} < previously "
                f"acknowledged {already} (FIFO violated?)"
            )
        for _ in range(to_drop):
            self.sent_to[source].popleft()
        self.acked[source] = ts.first
        if self.transform_enabled and concurrent_entries is not None:
            expected = [entry.op_id for entry in self.sent_to[source]]
            actual = [entry.op_id for entry in concurrent_entries]
            if expected != actual:
                raise ConsistencyError(
                    f"notifier: formula (7) concurrent set {actual} != pending "
                    f"set {expected} for {message.op_id} from site {source}"
                )
        new_op = message.op
        if self.transform_enabled:
            for entry in self.sent_to[source]:
                new_op, updated = self.ot.transform(
                    new_op, entry.op, source < entry.origin_site
                )
                entry.op = updated
        # Execute; the transformed operation becomes a *new* operation
        # "generated at site 0" (paper Section 3.1 / Fig. 3).
        self.document = _execute_remote(
            self.ot, self.document, new_op, self.transform_enabled
        )
        self.sv.record_execution_from(source)
        transformed_id = f"{message.op_id}'"
        self.executed_op_ids.append(transformed_id)
        if self.event_log is not None:
            self.event_log.execute(0, message.op_id)
            self.event_log.generate(0, transformed_id)
        self.hb.append(
            HistoryEntry(
                op=new_op,
                timestamp=self.sv.full_timestamp(),
                origin_site=source,
                origin_kind=OriginKind.FROM_CLIENT,
                op_id=transformed_id,
                executed_at=self.sim.now,
                source_op_id=message.op_id,
            )
        )
        # Broadcast the transformed form to every other site with a
        # per-destination compressed timestamp (formulas 1-2).
        for dest in range(1, self.n_sites + 1):
            if dest == source:
                continue
            dest_ts = self.sv.compress_for_destination(dest)
            self.broadcast_log.append((transformed_id, dest, dest_ts))
            out = OpMessage(
                op=new_op,
                timestamp=dest_ts,
                origin_site=source,
                op_id=transformed_id,
                source_op_id=message.op_id,
            )
            self.send(dest, out, timestamp_bytes=dest_ts.size_bytes())
            self.sent_to[dest].append(
                PendingOp(op=new_op, op_id=transformed_id, origin_site=source)
            )

    def _concurrency_pass(self, message: OpMessage, source: int) -> list[HistoryEntry]:
        """Run formula (7) over ``HB_0``; record and (optionally) verify."""
        out: list[HistoryEntry] = []
        for entry in self.hb:
            assert entry.origin_kind is OriginKind.FROM_CLIENT
            verdict = notifier_concurrent(
                message.timestamp, source, entry.timestamp, entry.origin_site
            )
            if self.record_checks:
                self.checks.append(
                    CheckRecord(
                        site=0,
                        new_op_id=message.op_id,
                        buffered_op_id=entry.op_id,
                        verdict=verdict,
                        new_timestamp=message.timestamp.as_paper_list(),
                        buffered_timestamp=list(entry.timestamp.as_paper_list()),
                    )
                )
            if self.verify_with_oracle and self.event_log is not None:
                # Formula (6)/(7) is defined over the operations as
                # "originally generated at sites x and y": compare the
                # original client operations' generation clocks.
                oracle = vc_concurrent(
                    self.event_log.generation_clock(message.op_id),
                    self.event_log.generation_clock(entry.source_op_id),
                )
                if oracle != verdict:
                    raise ConsistencyError(
                        f"notifier: compressed verdict {verdict} != oracle {oracle} "
                        f"for ({message.op_id}, {entry.source_op_id})"
                    )
            if verdict:
                out.append(entry)
        return out

    def admit_client(self, client: "StarClient") -> None:
        """Admit a late joiner: grow ``SV_0`` and send the state snapshot.

        The snapshot covers every operation executed so far, so the
        joiner's acknowledgement horizon starts at ``SV_0.total()`` and
        nothing is pending for it; FIFO on the fresh channel guarantees
        the snapshot precedes any subsequent broadcast.
        """
        site_id = self.sv.add_site()
        if client.pid != site_id:
            raise ValueError(
                f"joiner must take the next site id {site_id}, got {client.pid}"
            )
        self.n_sites = site_id
        self.sent_to[site_id] = deque()
        self.acked[site_id] = self.sv.total()
        self.send(
            site_id,
            SnapshotMessage(document=self.document, base_count=self.sv.total()),
            timestamp_bytes=0,
            kind="snapshot",
        )

    def _serve_resync(self, site: int) -> None:
        """Re-admit a crashed-and-restarted client.

        The snapshot covers everything executed at site 0, so nothing
        stays pending for the restarted site: its send window was
        already voided by the epoch bump, ``sent_to``/``acked`` restart
        at the snapshot horizon, and the snapshot itself goes out as
        seq 0 of the new epoch -- FIFO guarantees every later broadcast
        arrives after it, exactly as for a fresh joiner.

        ``base_count`` excludes the site's own operations (the notifier
        only ever broadcasts *other* sites' operations to it), and
        ``own_count`` hands back ``SV_0[site]`` so the client's local
        numbering resumes where the notifier's bookkeeping expects.
        """
        own = self.sv[site]
        base = self.sv.total() - own
        self.sent_to[site] = deque()
        self.acked[site] = base
        self.rel_stats.resyncs_served += 1
        origin_clock = None
        if self.event_log is not None:
            origin_clock = self.event_log.site_clock(0)
        self.send(
            site,
            SnapshotMessage(
                document=self.document,
                base_count=base,
                own_count=own,
                origin_clock=origin_clock,
            ),
            timestamp_bytes=0,
            kind="snapshot",
        )

    def collect_garbage(self) -> int:
        """Prune HB entries no longer pending for any destination."""
        needed = {pending.op_id for entries in self.sent_to.values() for pending in entries}
        return self.hb.garbage_collect(lambda entry: entry.op_id in needed)

    def clock_storage_ints(self) -> int:
        """Resident clock-state integers at the notifier: N."""
        return self.sv.storage_ints()


class StarSession:
    """A complete editing session: one notifier plus N clients."""

    def __init__(
        self,
        n_sites: int,
        ot_type_name: str = "text-positional",
        initial_state: Any = None,
        latency_factory: Callable[[int, int], LatencyModel] | None = None,
        verify_with_oracle: bool = False,
        transform_enabled: bool = True,
        record_events: bool = True,
        record_checks: bool = True,
        fault_plan: FaultPlan | None = None,
        reliability: ReliabilityConfig | None = None,
    ) -> None:
        self.sim = Simulator()
        self._ot_type_name = ot_type_name
        self._transform_enabled = transform_enabled
        self._record_checks = record_checks
        self.fault_plan = fault_plan
        # Faults demand the reliability protocol; without faults it is
        # opt-in (and off by default, keeping the perfect-network wire
        # accounting byte-for-byte identical to the paper's).
        if fault_plan is not None and reliability is None:
            reliability = ReliabilityConfig()
        self.reliability = reliability
        self.event_log = EventLog(n_sites + 1) if record_events else None
        self.notifier = StarNotifier(
            self.sim,
            n_sites,
            ot_type_name,
            initial_state,
            self.event_log,
            verify_with_oracle,
            transform_enabled,
            record_checks,
            reliability=reliability,
        )
        self.clients = [
            StarClient(
                self.sim,
                i,
                ot_type_name,
                initial_state,
                self.event_log,
                verify_with_oracle,
                transform_enabled,
                record_checks,
                reliability=reliability,
            )
            for i in range(1, n_sites + 1)
        ]
        self.topology = StarTopology(
            self.sim,
            [self.notifier, *self.clients],
            latency_factory,
            channel_factory=fault_plan.channel_factory() if fault_plan else None,
        )
        if fault_plan is not None:
            for crash in fault_plan.crashes:
                client = self.client(crash.site)
                self.sim.schedule(crash.at, client.crash)
                self.sim.schedule(crash.restart_at, client.restart)

    def add_client(self, at: float) -> int:
        """Schedule a late join at virtual time ``at``; returns the site id.

        At ``at`` the new client is wired to the notifier, admitted (the
        notifier grows ``SV_0`` by one entry) and sent a state snapshot;
        it may generate operations once the snapshot has arrived.

        Dynamic membership is incompatible with the fixed-size
        ground-truth event log, so it requires ``record_events=False``.
        """
        if self.event_log is not None:
            raise ValueError(
                "dynamic membership needs record_events=False (the event "
                "log's vector clocks have a fixed site count)"
            )
        site_id = len(self.clients) + 1
        client = StarClient(
            self.sim,
            site_id,
            self._ot_type_name,
            None,
            None,
            False,
            self._transform_enabled,
            self._record_checks,
            joining=True,
            reliability=self.reliability,
        )
        self.clients.append(client)

        def join() -> None:
            self.topology.add_client(client)
            self.notifier.admit_client(client)

        self.sim.schedule(at, join)
        return site_id

    def client(self, site_id: int) -> StarClient:
        """The client for 1-based ``site_id``."""
        if not 1 <= site_id <= len(self.clients):
            raise IndexError(f"site ids are 1..{len(self.clients)}, got {site_id}")
        return self.clients[site_id - 1]

    def generate_at(self, site_id: int, op: Any, at: float, op_id: str | None = None) -> None:
        """Schedule generation of ``op`` at ``site_id`` at virtual time ``at``."""
        client = self.client(site_id)
        self.sim.schedule(at, lambda: client.generate(op, op_id))

    def run(self, until: float | None = None) -> int:
        """Run the simulation; returns the number of events executed."""
        return self.sim.run(until=until)

    def documents(self) -> list[Any]:
        """Document states: ``[notifier, client 1, ..., client N]``."""
        return [self.notifier.document] + [c.document for c in self.clients]

    def converged(self) -> bool:
        """True iff all sites (including the notifier) hold equal state."""
        docs = self.documents()
        return all(doc == docs[0] for doc in docs[1:])

    def quiescent(self) -> bool:
        """True iff no message is still in flight."""
        return self.sim.pending_events == 0

    def all_checks(self) -> list[CheckRecord]:
        records = list(self.notifier.checks)
        for client in self.clients:
            records.extend(client.checks)
        return records

    def wire_stats(self):
        return self.topology.total_stats()

    def reliable_delivery_in_order(self) -> bool:
        """True iff every endpoint's reliability layer released a gap-free
        FIFO stream to the editor (trivially true without reliability)."""
        endpoints = [self.notifier, *self.clients]
        return all(endpoint.delivered_in_order() for endpoint in endpoints)

    def fault_report(self):
        """Aggregate what the network did and what the protocol absorbed."""
        from repro.metrics.accounting import build_fault_report

        return build_fault_report(
            self.topology.total_fault_stats(),
            [self.notifier.rel_stats, *(c.rel_stats for c in self.clients)],
        )
