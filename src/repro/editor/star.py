"""The star-topology group editor (Web-based REDUCE, paper Sections 2-4).

This module is the session layer of the star stack: it wires the two
roles over :class:`repro.net.topology.StarTopology` and exposes the
experiment surface (run, convergence check, wire statistics, event log).
The stack it assembles, bottom to top:

* transport -- :mod:`repro.net.reliability`: raw FIFO pass-through on a
  perfect network, or the sequence-numbered / retransmitting /
  epoch-fenced reliability protocol when faults are injected.  Editors
  *own* a transport; none inherits one.
* causality -- the compressed state vectors and concurrency formulas
  (:mod:`repro.core`), plus the wire formats
  (:mod:`repro.editor.messages`).
* integration -- :class:`repro.editor.star_client.StarClient` (sites
  ``1..N``: execute locally, timestamp with ``SV_i``, formula (5)) and
  :class:`repro.editor.star_notifier.StarNotifier` (site 0: full
  ``SV_0``, formula (7), transform and re-broadcast with
  per-destination compressed timestamps).
* session -- :class:`StarSession` below, a
  :class:`repro.session.SessionBase`.

Transformation discipline
-------------------------
The paper defers the transformation path to its references [14, 15]; we
use the standard symmetric treatment for star topologies: when an
incoming operation is transformed against a concurrent history
operation, the history operation is simultaneously inclusion-transformed
against the incoming one, so the buffer always reflects the current
document context.  Insert-position ties are broken by originating site
identifier (lower site wins), evaluated identically at both ends, which
makes the outcome site-independent -- the convergence property the
property-based tests exercise.

Ground truth
------------
Every generation/execution is recorded in a shared
:class:`repro.clocks.events.EventLog`.  With ``verify_with_oracle=True``
each compressed-timestamp concurrency verdict is asserted against full
vector clocks (paper formula 3) at check time; the integration tests run
entire random sessions this way.

Reliability under faults
------------------------
The formulas require FIFO channels; a faulty network (see
:mod:`repro.net.faults`) may lose or duplicate messages and clients may
crash.  When a session runs with a fault plan, every endpoint owns a
:class:`repro.net.reliability.ReliableEndpoint` transport: messages
travel in sequence-numbered
:class:`~repro.net.reliability.ReliablePacket` envelopes, the sender
retransmits unacknowledged packets with exponential backoff, and the
receiver deduplicates by ``(source, seq)`` and releases packets to the
editor strictly in sequence order -- reconstructing exactly the FIFO
stream formulas (5) and (7) assume.  A crashed client loses all volatile
state; on restart it opens a new *epoch* (stale in-flight traffic from
the previous incarnation is discarded by epoch) and resynchronises
through the existing :class:`~repro.editor.messages.SnapshotMessage`
path.

For backwards compatibility this module re-exports the full
pre-refactor public surface (messages, reliability classes, roles).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.clocks.events import EventLog
from repro.editor.failover import FailoverManager
from repro.editor.messages import (
    ElectMessage,
    OpMessage,
    PromoteMessage,
    ResyncRequest,
    SnapshotMessage,
    StateContribution,
)
from repro.editor.star_client import StarClient, UndoError, execute_remote
from repro.editor.star_notifier import PendingOp, StarNotifier
from repro.net.channel import LatencyModel
from repro.net.faults import FaultPlan
from repro.net.reliability import (
    ReliabilityConfig,
    ReliabilityStats,
    ReliablePacket,
    ReliableEndpoint,
)
from repro.net.simulator import Simulator
from repro.net.topology import StarTopology
from repro.obs.tracer import Tracer
from repro.session import CheckRecord, ConsistencyError, SessionBase

__all__ = [
    "CheckRecord",
    "ConsistencyError",
    "ElectMessage",
    "FailoverManager",
    "OpMessage",
    "PromoteMessage",
    "StateContribution",
    "PendingOp",
    "ReliabilityConfig",
    "ReliabilityStats",
    "ReliablePacket",
    "ReliableEndpoint",
    "ResyncRequest",
    "SnapshotMessage",
    "StarClient",
    "StarNotifier",
    "StarSession",
    "UndoError",
    "execute_remote",
]


class StarSession(SessionBase):
    """A complete editing session: one notifier plus N clients."""

    def __init__(
        self,
        n_sites: int,
        ot_type_name: str = "text-positional",
        initial_state: Any = None,
        latency_factory: Callable[[int, int], LatencyModel] | None = None,
        verify_with_oracle: bool = False,
        transform_enabled: bool = True,
        record_events: bool = True,
        record_checks: bool = True,
        fault_plan: FaultPlan | None = None,
        reliability: ReliabilityConfig | None = None,
        tracer: Tracer | None = None,
        standby_site: int | None = None,
    ) -> None:
        self.sim = Simulator()
        self._ot_type_name = ot_type_name
        self._transform_enabled = transform_enabled
        self._record_checks = record_checks
        self.fault_plan = fault_plan
        self.tracer = tracer
        if tracer is not None:
            tracer.bind_clock(lambda: self.sim.now)
        # Faults demand the reliability protocol; without faults it is
        # opt-in (and off by default, keeping the perfect-network wire
        # accounting byte-for-byte identical to the paper's).
        if fault_plan is not None and reliability is None:
            reliability = ReliabilityConfig()
        self.reliability = reliability
        self.event_log = EventLog(n_sites + 1) if record_events else None
        self.notifier = StarNotifier(
            self.sim,
            n_sites,
            ot_type_name,
            initial_state,
            self.event_log,
            verify_with_oracle,
            transform_enabled,
            record_checks,
            reliability=reliability,
            tracer=tracer,
        )
        self.clients = [
            StarClient(
                self.sim,
                i,
                ot_type_name,
                initial_state,
                self.event_log,
                verify_with_oracle,
                transform_enabled,
                record_checks,
                reliability=reliability,
                tracer=tracer,
            )
            for i in range(1, n_sites + 1)
        ]
        self.topology = StarTopology(
            self.sim,
            [self.notifier, *self.clients],
            latency_factory,
            channel_factory=fault_plan.channel_factory() if fault_plan else None,
        )
        # Failover machinery: present whenever the reliability protocol
        # runs (its retransmit-budget give-up is the crash detector).
        self.promoted_notifier: StarNotifier | None = None
        self.failover: FailoverManager | None = None
        if reliability is not None:
            manager = FailoverManager(self, standby_site=standby_site)
            self.failover = manager
            for client in self.clients:
                client.failover = manager
            for endpoint in [self.notifier, *self.clients]:
                transport = endpoint.transport
                assert isinstance(transport, ReliableEndpoint)
                transport.on_peer_dead = (
                    lambda peer, reporter=endpoint: manager.peer_dead(reporter, peer)
                )
        elif standby_site is not None:
            raise ValueError(
                "standby_site requires the reliability protocol (failover "
                "detection runs on retransmit budgets)"
            )
        if fault_plan is not None:
            for crash in fault_plan.crashes:
                client = self.client(crash.site)
                self.sim.schedule(crash.at, client.crash)
                self.sim.schedule(crash.restart_at, client.restart)
            if fault_plan.notifier_crash is not None:
                self.sim.schedule(fault_plan.notifier_crash.at, self.notifier.crash)

    def endpoints(self) -> Sequence[Any]:
        """Canonical site order: ``[notifier, client 1, ..., client N]``.

        After a failover, the centre is the promoted notifier and the
        dead original (plus the successor's frozen client role, whose
        replica the promoted notifier carries forward) drops out.
        """
        if self.promoted_notifier is not None:
            survivors = [client for client in self.clients if not client.promoted]
            return [self.promoted_notifier, *survivors]
        return [self.notifier, *self.clients]

    def participants(self) -> Sequence[Any]:
        """Every role ever played, for whole-run diagnostics."""
        out: list[Any] = [self.notifier, *self.clients]
        if self.promoted_notifier is not None:
            out.append(self.promoted_notifier)
        return out

    def add_client(self, at: float) -> int:
        """Schedule a late join at virtual time ``at``; returns the site id.

        At ``at`` the new client is wired to the notifier, admitted (the
        notifier grows ``SV_0`` by one entry) and sent a state snapshot;
        it may generate operations once the snapshot has arrived.

        Dynamic membership is incompatible with the fixed-size
        ground-truth event log, so it requires ``record_events=False``.
        """
        if self.event_log is not None:
            raise ValueError(
                "dynamic membership needs record_events=False (the event "
                "log's vector clocks have a fixed site count)"
            )
        site_id = len(self.clients) + 1
        client = StarClient(
            self.sim,
            site_id,
            self._ot_type_name,
            None,
            None,
            False,
            self._transform_enabled,
            self._record_checks,
            joining=True,
            reliability=self.reliability,
            tracer=self.tracer,
        )
        self.clients.append(client)

        def join() -> None:
            self.topology.add_client(client)
            self.notifier.admit_client(client)

        self.sim.schedule(at, join)
        return site_id

    def client(self, site_id: int) -> StarClient:
        """The client for 1-based ``site_id``."""
        if not 1 <= site_id <= len(self.clients):
            raise IndexError(f"site ids are 1..{len(self.clients)}, got {site_id}")
        return self.clients[site_id - 1]

    def generate_at(self, site_id: int, op: Any, at: float, op_id: str | None = None) -> None:
        """Schedule generation of ``op`` at ``site_id`` at virtual time ``at``."""
        client = self.client(site_id)
        self.sim.schedule(at, lambda: client.generate(op, op_id))

    def fault_report(self):
        """Aggregate what the network did and what the protocol absorbed."""
        from repro.metrics.accounting import build_fault_report

        # One stats object per *transport*: the promoted notifier shares
        # the successor client's transport, so iterating the original
        # roles counts every transport exactly once across a failover.
        return build_fault_report(
            self.topology.total_fault_stats(),
            [endpoint.rel_stats for endpoint in [self.notifier, *self.clients]],
        )
