"""The star-topology group editor (Web-based REDUCE, paper Sections 2-4).

Roles
-----
* :class:`StarClient` -- a collaborating site ``i in 1..N``.  Executes
  local operations immediately (high responsiveness), timestamps them
  with its 2-element state vector ``SV_i`` and sends them to the
  notifier.  Incoming notifier operations are checked for concurrency
  against the history buffer with formula (5), transformed against the
  concurrent (i.e. not-yet-acknowledged local) operations, and executed.
* :class:`StarNotifier` -- site 0.  Maintains the full ``SV_0``; on
  receiving an operation from site ``x`` it determines the concurrent
  history entries with formula (7), transforms the operation against
  them, executes it, and broadcasts the *transformed* form to every
  other site with a per-destination compressed timestamp (formulas
  1-2).  This redefinition is what collapses the causality relation to
  two dimensions.
* :class:`StarSession` -- wires clients and notifier over
  :class:`repro.net.topology.StarTopology` and exposes experiment
  helpers (run, convergence check, wire statistics, event log).

Transformation discipline
-------------------------
The paper defers the transformation path to its references [14, 15]; we
use the standard symmetric treatment for star topologies: when an
incoming operation is transformed against a concurrent history
operation, the history operation is simultaneously inclusion-transformed
against the incoming one, so the buffer always reflects the current
document context.  Insert-position ties are broken by originating site
identifier (lower site wins), evaluated identically at both ends, which
makes the outcome site-independent -- the convergence property the
property-based tests exercise.

Ground truth
------------
Every generation/execution is recorded in a shared
:class:`repro.clocks.events.EventLog`.  With ``verify_with_oracle=True``
each compressed-timestamp concurrency verdict is asserted against full
vector clocks (paper formula 3) at check time; the integration tests run
entire random sessions this way.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.clocks.events import EventLog
from repro.clocks.vector import concurrent as vc_concurrent
from repro.core.concurrency import client_concurrent, notifier_concurrent
from repro.core.history import HistoryBuffer, HistoryEntry
from repro.core.state_vector import ClientStateVector, NotifierStateVector
from repro.core.timestamp import CompressedTimestamp, OriginKind
from repro.net.channel import LatencyModel
from repro.net.process import SimProcess
from repro.net.simulator import Simulator
from repro.net.topology import StarTopology
from repro.net.transport import Envelope
from repro.ot.types import get_type

_op_counter = itertools.count(1)


def _fresh_op_id(prefix: str) -> str:
    return f"{prefix}{next(_op_counter)}"


class ConsistencyError(AssertionError):
    """Raised when a compressed verdict disagrees with the oracle."""


class UndoError(RuntimeError):
    """Raised when the requested undo is not available."""


@dataclass(frozen=True)
class OpMessage:
    """The wire format of a propagated operation."""

    op: Any
    timestamp: CompressedTimestamp
    origin_site: int  # site the operation was originally generated at
    op_id: str
    source_op_id: str | None = None  # for notifier outputs: the input op


@dataclass(frozen=True)
class SnapshotMessage:
    """State transfer for a late-joining client.

    ``base_count`` is the number of operations the notifier had executed
    when the snapshot was taken; the joiner seeds ``SV_i[1]`` with it so
    the compressed-timestamp arithmetic (formulas 1-2, 5, 7) stays exact:
    the snapshot "delivers" those operations in bulk, and the FIFO
    channel guarantees every later broadcast arrives after it.
    """

    document: Any
    base_count: int


@dataclass
class PendingOp:
    """A broadcast operation awaiting acknowledgement by one destination.

    Each destination holds its **own** record: the form evolves by
    inclusion transformation against that destination's incoming
    operations only, keeping the server-to-destination transformation
    path context-valid (the Jupiter bridge invariant).  Sharing one
    object across destinations would let one client's traffic corrupt
    another's path.
    """

    op: Any
    op_id: str
    origin_site: int


@dataclass
class CheckRecord:
    """One concurrency check, for diagnostics and Fig. 3 assertions."""

    site: int
    new_op_id: str
    buffered_op_id: str
    verdict: bool
    new_timestamp: list[int]
    buffered_timestamp: list[int]



def _execute_remote(ot: Any, state: Any, op: Any, transform_enabled: bool) -> Any:
    """Execute a remote operation, best-effort when transformation is off.

    The transformation-off mode exists to reproduce the paper's Fig. 2
    failure behaviour; a naive replica clamps out-of-range positions
    instead of crashing (see :func:`repro.ot.operations.apply_clamped`).
    """
    if transform_enabled:
        return ot.apply(state, op)
    from repro.ot.operations import Operation, apply_clamped

    if isinstance(op, Operation) and isinstance(state, str):
        return apply_clamped(state, op)
    return ot.apply(state, op)


class StarClient(SimProcess):
    """A collaborating site ``i != 0``."""

    def __init__(
        self,
        sim: Simulator,
        site_id: int,
        ot_type_name: str = "text-positional",
        initial_state: Any = None,
        event_log: EventLog | None = None,
        verify_with_oracle: bool = False,
        transform_enabled: bool = True,
        record_checks: bool = True,
        joining: bool = False,
    ) -> None:
        if site_id <= 0:
            raise ValueError(f"client site ids are 1..N, got {site_id}")
        super().__init__(sim, site_id)
        self.ot = get_type(ot_type_name)
        self.document = self.ot.initial() if initial_state is None else initial_state
        self.sv = ClientStateVector(site_id)
        self.hb = HistoryBuffer()
        # Local operations not yet reflected in a notifier timestamp; each
        # element is the HistoryEntry so re-transformation updates the HB.
        self.pending: list[HistoryEntry] = []
        self.event_log = event_log
        self.verify_with_oracle = verify_with_oracle
        self.transform_enabled = transform_enabled
        # Diagnostic trace of every concurrency check.  O(ops * HB) memory:
        # keep it on for scenario replays and tests, off for long sessions.
        self.record_checks = record_checks
        self.checks: list[CheckRecord] = []
        self.executed_op_ids: list[str] = []
        # Late joiners start inactive and are activated by the snapshot.
        self.active = not joining

    # -- local editing -------------------------------------------------------

    def generate(self, op: Any, op_id: str | None = None) -> str:
        """Generate, execute and propagate a local operation.

        Returns the operation id.  Per the paper: execute immediately,
        increment ``SV_i[2]``, timestamp with the current ``SV_i``,
        propagate to site 0, and buffer in the local HB.
        """
        if not self.active:
            raise RuntimeError(
                f"site {self.pid} has not received its join snapshot yet"
            )
        op_id = op_id or _fresh_op_id(f"c{self.pid}_")
        inverse = None
        invert = getattr(self.ot, "invert", None)
        if invert is not None:
            try:
                inverse = invert(self.document, op)
            except (TypeError, ValueError):
                inverse = None  # op shape the type cannot invert
        self.document = self.ot.apply(self.document, op)
        self.sv.record_local_execution()
        ts = self.sv.timestamp()
        entry = HistoryEntry(
            op=op,
            timestamp=ts,
            origin_site=self.pid,
            origin_kind=OriginKind.LOCAL,
            op_id=op_id,
            executed_at=self.sim.now,
            inverse=inverse,
        )
        self.hb.append(entry)
        self.pending.append(entry)
        self.executed_op_ids.append(op_id)
        if self.event_log is not None:
            self.event_log.generate(self.pid, op_id)
        message = OpMessage(op=op, timestamp=ts, origin_site=self.pid, op_id=op_id)
        self.send(0, message, timestamp_bytes=ts.size_bytes())
        return op_id

    # -- receiving from the notifier ------------------------------------------

    def on_message(self, envelope: Envelope) -> None:
        if isinstance(envelope.payload, SnapshotMessage):
            self._install_snapshot(envelope.payload)
            return
        if not self.active:
            raise ConsistencyError(
                f"site {self.pid} received an operation before its snapshot "
                "(FIFO violated?)"
            )
        message: OpMessage = envelope.payload
        ts = message.timestamp
        # The full formula-(5) sweep over the HB is O(|HB|) per arrival
        # and only needed when recording or oracle-verifying checks; the
        # FIFO analysis (see _concurrency_pass) proves the concurrent
        # set equals the unacknowledged-pending set, which the fast path
        # uses directly.  The slow path cross-checks the two.
        diagnostics = self.record_checks or self.verify_with_oracle
        concurrent_entries = self._concurrency_pass(message) if diagnostics else None
        # FIFO acknowledgement: T[2] local operations are now reflected
        # in the notifier's state; they stop being "pending".
        while self.pending and self.pending[0].timestamp.second <= ts.second:
            self.pending.pop(0)
        if self.transform_enabled and concurrent_entries is not None:
            expected = [entry.op_id for entry in self.pending]
            actual = [entry.op_id for entry in concurrent_entries]
            if expected != actual:
                raise ConsistencyError(
                    f"site {self.pid}: formula (5) concurrent set {actual} != "
                    f"pending set {expected} for {message.op_id}"
                )
        new_op = message.op
        if self.transform_enabled:
            for entry in self.pending:
                new_op, updated = self.ot.transform(
                    new_op, entry.op, message.origin_site < entry.origin_site
                )
                entry.op = updated
        self.document = _execute_remote(
            self.ot, self.document, new_op, self.transform_enabled
        )
        self.sv.record_remote_execution()
        self.hb.append(
            HistoryEntry(
                op=new_op,
                timestamp=ts,
                origin_site=message.origin_site,
                origin_kind=OriginKind.FROM_CENTER,
                op_id=message.op_id,
                executed_at=self.sim.now,
            )
        )
        self.executed_op_ids.append(message.op_id)
        if self.event_log is not None:
            self.event_log.execute(self.pid, message.op_id)

    def _concurrency_pass(self, message: OpMessage) -> list[HistoryEntry]:
        """Run formula (5) over the HB; record and (optionally) verify."""
        out: list[HistoryEntry] = []
        for entry in self.hb:
            verdict = client_concurrent(message.timestamp, entry.timestamp, entry.origin_kind)
            if self.record_checks:
                self.checks.append(
                    CheckRecord(
                        site=self.pid,
                        new_op_id=message.op_id,
                        buffered_op_id=entry.op_id,
                        verdict=verdict,
                        new_timestamp=message.timestamp.as_paper_list(),
                        buffered_timestamp=list(entry.timestamp.as_paper_list()),
                    )
                )
            if self.verify_with_oracle and self.event_log is not None:
                oracle = vc_concurrent(
                    self.event_log.generation_clock(message.op_id),
                    self.event_log.generation_clock(entry.op_id),
                )
                if oracle != verdict:
                    raise ConsistencyError(
                        f"site {self.pid}: compressed verdict {verdict} != oracle "
                        f"{oracle} for ({message.op_id}, {entry.op_id})"
                    )
            if verdict:
                out.append(entry)
        return out

    def undo_last(self) -> str:
        """Undo this site's most recent operation (undo-as-new-operation).

        Available while the operation is still the site's latest
        execution: its stored inverse is then defined on the current
        document, so the undo is generated and propagated like any other
        local operation -- remote sites need no special handling, and
        concurrent remote operations are transformed against the undo
        exactly like against an ordinary edit.

        Raises :class:`UndoError` if the last executed operation was not
        a local one (a remote operation arrived since -- the inverse's
        context is gone) or the OT type does not support inversion.
        """
        if len(self.hb) == 0:
            raise UndoError(f"site {self.pid} has nothing to undo")
        entry = self.hb[len(self.hb) - 1]
        if entry.origin_kind is not OriginKind.LOCAL:
            raise UndoError(
                f"site {self.pid}: a remote operation executed after the last "
                "local one; undo context is gone"
            )
        if entry.inverse is None:
            raise UndoError(
                f"OT type {self.ot.name!r} does not support inversion"
            )
        return self.generate(entry.inverse)

    def _install_snapshot(self, snapshot: SnapshotMessage) -> None:
        """Adopt the notifier's state and seed the compressed clock.

        ``SV_i[1] := base_count``: the snapshot stands in for the first
        ``base_count`` operations of the notifier's stream, so all later
        timestamp arithmetic lines up with clients that were present from
        the start.
        """
        if self.active:
            raise ConsistencyError(f"site {self.pid} received a second snapshot")
        self.document = snapshot.document
        self.sv.received_from_center = snapshot.base_count
        self.active = True

    # -- maintenance -----------------------------------------------------------

    def collect_garbage(self) -> int:
        """Prune HB entries that can never again test concurrent.

        Under FIFO, FROM_CENTER entries never satisfy formula (5), and a
        LOCAL entry stops mattering once acknowledged (it left
        ``pending``).  Returns the number of entries removed.
        """
        pending_ids = {entry.op_id for entry in self.pending}
        return self.hb.garbage_collect(lambda entry: entry.op_id in pending_ids)

    def clock_storage_ints(self) -> int:
        """Resident clock-state integers: the paper's constant 2."""
        return self.sv.storage_ints()


class StarNotifier(SimProcess):
    """Site 0: the notifier at the centre of the star."""

    def __init__(
        self,
        sim: Simulator,
        n_sites: int,
        ot_type_name: str = "text-positional",
        initial_state: Any = None,
        event_log: EventLog | None = None,
        verify_with_oracle: bool = False,
        transform_enabled: bool = True,
        record_checks: bool = True,
    ) -> None:
        super().__init__(sim, 0)
        if n_sites < 1:
            raise ValueError(f"need at least one collaborating site, got {n_sites}")
        self.n_sites = n_sites
        self.ot = get_type(ot_type_name)
        self.document = self.ot.initial() if initial_state is None else initial_state
        self.sv = NotifierStateVector(n_sites)
        self.hb = HistoryBuffer()
        # Per destination: broadcast operations the destination has not
        # yet acknowledged, each in its per-destination form.
        self.sent_to: dict[int, list[PendingOp]] = {i: [] for i in range(1, n_sites + 1)}
        # How many entries have been dropped from each sent_to list.
        self.acked: dict[int, int] = {i: 0 for i in range(1, n_sites + 1)}
        self.event_log = event_log
        self.verify_with_oracle = verify_with_oracle
        self.transform_enabled = transform_enabled
        self.record_checks = record_checks
        self.checks: list[CheckRecord] = []
        self.executed_op_ids: list[str] = []
        self.broadcast_log: list[tuple[str, int, CompressedTimestamp]] = []

    def on_message(self, envelope: Envelope) -> None:
        message: OpMessage = envelope.payload
        source = envelope.source
        ts = message.timestamp
        diagnostics = self.record_checks or self.verify_with_oracle
        concurrent_entries = (
            self._concurrency_pass(message, source) if diagnostics else None
        )
        # FIFO acknowledgement: the source has seen the first T[1]
        # operations ever sent to it; drop them from its pending list.
        already = self.acked[source]
        to_drop = ts.first - already
        if to_drop < 0:
            raise ConsistencyError(
                f"notifier: site {source} acknowledged {ts.first} < previously "
                f"acknowledged {already} (FIFO violated?)"
            )
        del self.sent_to[source][:to_drop]
        self.acked[source] = ts.first
        if self.transform_enabled and concurrent_entries is not None:
            expected = [entry.op_id for entry in self.sent_to[source]]
            actual = [entry.op_id for entry in concurrent_entries]
            if expected != actual:
                raise ConsistencyError(
                    f"notifier: formula (7) concurrent set {actual} != pending "
                    f"set {expected} for {message.op_id} from site {source}"
                )
        new_op = message.op
        if self.transform_enabled:
            for entry in self.sent_to[source]:
                new_op, updated = self.ot.transform(
                    new_op, entry.op, source < entry.origin_site
                )
                entry.op = updated
        # Execute; the transformed operation becomes a *new* operation
        # "generated at site 0" (paper Section 3.1 / Fig. 3).
        self.document = _execute_remote(
            self.ot, self.document, new_op, self.transform_enabled
        )
        self.sv.record_execution_from(source)
        transformed_id = f"{message.op_id}'"
        self.executed_op_ids.append(transformed_id)
        if self.event_log is not None:
            self.event_log.execute(0, message.op_id)
            self.event_log.generate(0, transformed_id)
        self.hb.append(
            HistoryEntry(
                op=new_op,
                timestamp=self.sv.full_timestamp(),
                origin_site=source,
                origin_kind=OriginKind.FROM_CLIENT,
                op_id=transformed_id,
                executed_at=self.sim.now,
                source_op_id=message.op_id,
            )
        )
        # Broadcast the transformed form to every other site with a
        # per-destination compressed timestamp (formulas 1-2).
        for dest in range(1, self.n_sites + 1):
            if dest == source:
                continue
            dest_ts = self.sv.compress_for_destination(dest)
            self.broadcast_log.append((transformed_id, dest, dest_ts))
            out = OpMessage(
                op=new_op,
                timestamp=dest_ts,
                origin_site=source,
                op_id=transformed_id,
                source_op_id=message.op_id,
            )
            self.send(dest, out, timestamp_bytes=dest_ts.size_bytes())
            self.sent_to[dest].append(
                PendingOp(op=new_op, op_id=transformed_id, origin_site=source)
            )

    def _concurrency_pass(self, message: OpMessage, source: int) -> list[HistoryEntry]:
        """Run formula (7) over ``HB_0``; record and (optionally) verify."""
        out: list[HistoryEntry] = []
        for entry in self.hb:
            assert entry.origin_kind is OriginKind.FROM_CLIENT
            verdict = notifier_concurrent(
                message.timestamp, source, entry.timestamp, entry.origin_site
            )
            if self.record_checks:
                self.checks.append(
                    CheckRecord(
                        site=0,
                        new_op_id=message.op_id,
                        buffered_op_id=entry.op_id,
                        verdict=verdict,
                        new_timestamp=message.timestamp.as_paper_list(),
                        buffered_timestamp=list(entry.timestamp.as_paper_list()),
                    )
                )
            if self.verify_with_oracle and self.event_log is not None:
                # Formula (6)/(7) is defined over the operations as
                # "originally generated at sites x and y": compare the
                # original client operations' generation clocks.
                oracle = vc_concurrent(
                    self.event_log.generation_clock(message.op_id),
                    self.event_log.generation_clock(entry.source_op_id),
                )
                if oracle != verdict:
                    raise ConsistencyError(
                        f"notifier: compressed verdict {verdict} != oracle {oracle} "
                        f"for ({message.op_id}, {entry.source_op_id})"
                    )
            if verdict:
                out.append(entry)
        return out

    def admit_client(self, client: "StarClient") -> None:
        """Admit a late joiner: grow ``SV_0`` and send the state snapshot.

        The snapshot covers every operation executed so far, so the
        joiner's acknowledgement horizon starts at ``SV_0.total()`` and
        nothing is pending for it; FIFO on the fresh channel guarantees
        the snapshot precedes any subsequent broadcast.
        """
        site_id = self.sv.add_site()
        if client.pid != site_id:
            raise ValueError(
                f"joiner must take the next site id {site_id}, got {client.pid}"
            )
        self.n_sites = site_id
        self.sent_to[site_id] = []
        self.acked[site_id] = self.sv.total()
        self.send(
            site_id,
            SnapshotMessage(document=self.document, base_count=self.sv.total()),
            timestamp_bytes=0,
            kind="snapshot",
        )

    def collect_garbage(self) -> int:
        """Prune HB entries no longer pending for any destination."""
        needed = {pending.op_id for entries in self.sent_to.values() for pending in entries}
        return self.hb.garbage_collect(lambda entry: entry.op_id in needed)

    def clock_storage_ints(self) -> int:
        """Resident clock-state integers at the notifier: N."""
        return self.sv.storage_ints()


class StarSession:
    """A complete editing session: one notifier plus N clients."""

    def __init__(
        self,
        n_sites: int,
        ot_type_name: str = "text-positional",
        initial_state: Any = None,
        latency_factory: Callable[[int, int], LatencyModel] | None = None,
        verify_with_oracle: bool = False,
        transform_enabled: bool = True,
        record_events: bool = True,
        record_checks: bool = True,
    ) -> None:
        self.sim = Simulator()
        self._ot_type_name = ot_type_name
        self._transform_enabled = transform_enabled
        self._record_checks = record_checks
        self.event_log = EventLog(n_sites + 1) if record_events else None
        self.notifier = StarNotifier(
            self.sim,
            n_sites,
            ot_type_name,
            initial_state,
            self.event_log,
            verify_with_oracle,
            transform_enabled,
            record_checks,
        )
        self.clients = [
            StarClient(
                self.sim,
                i,
                ot_type_name,
                initial_state,
                self.event_log,
                verify_with_oracle,
                transform_enabled,
                record_checks,
            )
            for i in range(1, n_sites + 1)
        ]
        self.topology = StarTopology(
            self.sim, [self.notifier, *self.clients], latency_factory
        )

    def add_client(self, at: float) -> int:
        """Schedule a late join at virtual time ``at``; returns the site id.

        At ``at`` the new client is wired to the notifier, admitted (the
        notifier grows ``SV_0`` by one entry) and sent a state snapshot;
        it may generate operations once the snapshot has arrived.

        Dynamic membership is incompatible with the fixed-size
        ground-truth event log, so it requires ``record_events=False``.
        """
        if self.event_log is not None:
            raise ValueError(
                "dynamic membership needs record_events=False (the event "
                "log's vector clocks have a fixed site count)"
            )
        site_id = len(self.clients) + 1
        client = StarClient(
            self.sim,
            site_id,
            self._ot_type_name,
            None,
            None,
            False,
            self._transform_enabled,
            self._record_checks,
            joining=True,
        )
        self.clients.append(client)

        def join() -> None:
            self.topology.add_client(client)
            self.notifier.admit_client(client)

        self.sim.schedule(at, join)
        return site_id

    def client(self, site_id: int) -> StarClient:
        """The client for 1-based ``site_id``."""
        if not 1 <= site_id <= len(self.clients):
            raise IndexError(f"site ids are 1..{len(self.clients)}, got {site_id}")
        return self.clients[site_id - 1]

    def generate_at(self, site_id: int, op: Any, at: float, op_id: str | None = None) -> None:
        """Schedule generation of ``op`` at ``site_id`` at virtual time ``at``."""
        client = self.client(site_id)
        self.sim.schedule(at, lambda: client.generate(op, op_id))

    def run(self, until: float | None = None) -> int:
        """Run the simulation; returns the number of events executed."""
        return self.sim.run(until=until)

    def documents(self) -> list[Any]:
        """Document states: ``[notifier, client 1, ..., client N]``."""
        return [self.notifier.document] + [c.document for c in self.clients]

    def converged(self) -> bool:
        """True iff all sites (including the notifier) hold equal state."""
        docs = self.documents()
        return all(doc == docs[0] for doc in docs[1:])

    def quiescent(self) -> bool:
        """True iff no message is still in flight."""
        return self.sim.pending_events == 0

    def all_checks(self) -> list[CheckRecord]:
        records = list(self.notifier.checks)
        for client in self.clients:
            records.extend(client.checks)
        return records

    def wire_stats(self):
        return self.topology.total_stats()
