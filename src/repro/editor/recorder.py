"""Session recording and deterministic replay.

Records every *original* operation of a star session -- generating site,
virtual generation time, operation content -- as JSON lines, and replays
a recording into a fresh session.  Two production uses:

* **reproducibility** -- a session trace is a complete, portable
  artefact (the examples and bug reports can ship one);
* **audit / recovery** -- replaying the trace through the same
  deterministic simulator reproduces the exact final document and every
  timestamp, which the tests assert.

Only positional text operations are serialised (the paper's op model);
the codec in :mod:`repro.net.codec` handles the wire format, this module
handles the at-rest format.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, TextIO

from repro.editor import StarSession
from repro.ot.operations import Delete, Identity, Insert, Operation, OperationGroup


class RecordingError(ValueError):
    """Raised on malformed trace data."""


def op_to_json(op: Operation) -> dict[str, Any]:
    """Serialise a positional operation to a JSON-compatible dict."""
    if isinstance(op, Insert):
        return {"type": "insert", "pos": op.pos, "text": op.text}
    if isinstance(op, Delete):
        return {"type": "delete", "pos": op.pos, "count": op.count}
    if isinstance(op, Identity):
        return {"type": "identity"}
    if isinstance(op, OperationGroup):
        return {"type": "group", "members": [op_to_json(m) for m in op.members]}
    raise RecordingError(f"cannot serialise operation type {type(op).__name__}")


def op_from_json(data: dict[str, Any]) -> Operation:
    """Deserialise an operation produced by :func:`op_to_json`."""
    kind = data.get("type")
    if kind == "insert":
        return Insert(data["text"], data["pos"])
    if kind == "delete":
        return Delete(data["count"], data["pos"])
    if kind == "identity":
        return Identity()
    if kind == "group":
        return OperationGroup(tuple(op_from_json(m) for m in data["members"]))
    raise RecordingError(f"unknown operation type {kind!r}")


@dataclass(frozen=True)
class TraceEntry:
    """One recorded original operation."""

    site: int
    time: float
    op_id: str
    op: Operation

    def to_json(self) -> str:
        return json.dumps(
            {
                "site": self.site,
                "time": self.time,
                "op_id": self.op_id,
                "op": op_to_json(self.op),
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, line: str) -> "TraceEntry":
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise RecordingError(f"malformed trace line: {exc}") from exc
        for key in ("site", "time", "op_id", "op"):
            if key not in data:
                raise RecordingError(f"trace line missing {key!r}: {line!r}")
        return cls(
            site=int(data["site"]),
            time=float(data["time"]),
            op_id=str(data["op_id"]),
            op=op_from_json(data["op"]),
        )


@dataclass
class SessionRecorder:
    """Collects the original operations of a running session.

    Attach before driving the session::

        recorder = SessionRecorder.attach(session)
        ... drive and run ...
        recorder.dump(open("trace.jsonl", "w"))
    """

    header: dict[str, Any]
    entries: list[TraceEntry] = field(default_factory=list)

    @classmethod
    def attach(cls, session: StarSession, initial_state: Any = None) -> "SessionRecorder":
        recorder = cls(
            header={
                "format": "repro-trace-v1",
                "n_sites": len(session.clients),
                "initial_state": initial_state
                if initial_state is not None
                else session.notifier.document,
            }
        )
        for client in session.clients:
            original_generate = client.generate

            def recording_generate(
                op, op_id=None, _orig=original_generate, _client=client
            ):
                assigned = _orig(op, op_id)
                recorder.entries.append(
                    TraceEntry(
                        site=_client.pid,
                        time=_client.sim.now,
                        op_id=assigned,
                        op=op,
                    )
                )
                return assigned

            client.generate = recording_generate  # type: ignore[method-assign]
        return recorder

    def dump(self, fh: TextIO) -> int:
        """Write header + one JSON line per operation; returns line count."""
        fh.write(json.dumps(self.header, sort_keys=True) + "\n")
        for entry in sorted(self.entries, key=lambda e: (e.time, e.site)):
            fh.write(entry.to_json() + "\n")
        return 1 + len(self.entries)


def load_trace(fh: TextIO) -> tuple[dict[str, Any], list[TraceEntry]]:
    """Read a trace; returns (header, entries)."""
    lines = [line for line in fh.read().splitlines() if line.strip()]
    if not lines:
        raise RecordingError("empty trace")
    header = json.loads(lines[0])
    if header.get("format") != "repro-trace-v1":
        raise RecordingError(f"unknown trace format {header.get('format')!r}")
    return header, [TraceEntry.from_json(line) for line in lines[1:]]


def replay(
    header: dict[str, Any],
    entries: list[TraceEntry],
    latency_factory: Callable | None = None,
    **session_kwargs: Any,
) -> StarSession:
    """Rebuild and run a session from a trace.

    With the same latency model the replay is bit-for-bit identical to
    the original run (same timestamps, same broadcasts, same document).
    """
    session = StarSession(
        header["n_sites"],
        initial_state=header["initial_state"],
        latency_factory=latency_factory,
        **session_kwargs,
    )
    for entry in entries:
        session.generate_at(entry.site, entry.op, entry.time, op_id=entry.op_id)
    session.run()
    return session
