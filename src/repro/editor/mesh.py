"""The fully-distributed baseline editor (original REDUCE deployment).

This is the architecture the paper *contrasts* with: every site talks to
every other site directly (paper Section 2.1), so no process redefines
the causality relation and **full N-element vector clocks** are required
on every message -- the overhead the compressed scheme eliminates.

Components
----------
* full vector clocks + causal-order delivery (messages are buffered
  until every causal predecessor has been delivered);
* a deterministic **canonical total order** ``(vc.sum(), site, seq)``
  extending happened-before (cf. Lamport);
* GOT-style transformation (Sun et al., TOCHI 1998 -- the paper's
  reference [14]): each operation's executed form is computed from its
  original form by exclusion/inclusion transformation against exactly
  the operations concurrent with it, evaluated over the canonical order.

Because each executed form is a deterministic function of the *set* of
operations (never of arrival order), all sites that have delivered the
same operations hold identical documents -- convergence by construction,
with intention preservation supplied by the transformation functions.

The implementation favours clarity over speed: each delivery recomputes
the document by replaying the canonical log (O(n^2) transformations).
The end-to-end benchmark (CLAIM-E2E) measures wire bytes, not replay
CPU, and notes this honestly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.clocks.vector import Ordering, VectorClock, compare
from repro.net.channel import LatencyModel
from repro.net.scheduler import Scheduler
from repro.net.simulator import Simulator
from repro.net.topology import MeshTopology
from repro.net.transport import Envelope
from repro.obs.tracer import TraceEventKind, Tracer
from repro.ot.operations import Operation
from repro.ot.transform import exclusion_transform, inclusion_transform
from repro.session import EditorEndpoint, HoldbackQueue, SessionBase


@dataclass(frozen=True)
class MeshOp:
    """An operation with its full vector-clock timestamp."""

    op: Operation  # original form, as generated
    vc: VectorClock  # generation clock (the N-element timestamp on the wire)
    site: int
    seq: int  # per-site generation index (1-based)

    @property
    def op_id(self) -> str:
        return f"m{self.site}_{self.seq}"

    def order_key(self) -> tuple[int, int, int]:
        """The canonical total order: extends happened-before."""
        return (self.vc.sum(), self.site, self.seq)

    def concurrent_with(self, other: "MeshOp") -> bool:
        return compare(self.vc, other.vc) is Ordering.CONCURRENT

    def precedes(self, other: "MeshOp") -> bool:
        return compare(self.vc, other.vc) is Ordering.BEFORE


def _lit(op: Operation, others: Sequence[tuple[Operation, tuple[int, int]]],
         own_key: tuple[int, int]) -> Operation:
    """Sequential inclusion transformation with site-priority ties."""
    for other_op, other_key in others:
        op = inclusion_transform(op, other_op, a_priority=own_key < other_key)
    return op


def _let(op: Operation, others_reversed: Sequence[Operation]) -> Operation:
    """Sequential exclusion transformation."""
    for other_op in others_reversed:
        op = exclusion_transform(op, other_op)
    return op


def got_transform(
    target: MeshOp,
    prefix: Sequence[MeshOp],
    prefix_forms: Sequence[Operation],
) -> Operation:
    """GOT (Sun et al. 1998): the executed form of ``target``.

    ``prefix`` is the canonical-order list of operations preceding
    ``target`` in the total order, with their executed forms
    ``prefix_forms``.  Because the total order extends causality, every
    causal predecessor of ``target`` lies in the prefix; the remaining
    prefix operations are concurrent with it.

    Cases (mirroring the original algorithm):

    1. nothing in the prefix is concurrent: the original form executes;
    2. everything from the first concurrent operation onward is
       concurrent: inclusion-transform through that suffix;
    3. mixed: causal predecessors inside the suffix are first
       exclusion-transformed back to the context where ``target`` was
       generated, ``target`` is exclusion-transformed against those, and
       finally inclusion-transformed through the whole suffix.
    """
    k = None
    for i, h in enumerate(prefix):
        if target.concurrent_with(h):
            k = i
            break
    if k is None:
        return target.op
    suffix = list(zip(prefix[k:], prefix_forms[k:]))
    target_key = (target.site, target.seq)
    if all(target.concurrent_with(h) for h, _ in suffix):
        return _lit(
            target.op,
            [(form, (h.site, h.seq)) for h, form in suffix],
            target_key,
        )
    # Mixed case (GOT step 3): recover each causal predecessor's form in
    # the context where ``target`` was generated, by excluding EVERY
    # suffix operation executed before it and re-including the
    # previously recovered predecessors.
    preceding: list[tuple[Operation, tuple[int, int]]] = []
    for i, (h, form) in enumerate(suffix):
        if not h.precedes(target):
            continue
        earlier_forms = [f for (_, f) in suffix[:i]]
        stripped = _let(form, list(reversed(earlier_forms))) if earlier_forms else form
        stripped = _lit(stripped, preceding, (h.site, h.seq))
        preceding.append((stripped, (h.site, h.seq)))
    # Exclude the recovered predecessors from ``target`` to reach the
    # pre-suffix context, then include the whole suffix.
    op = _let(target.op, [form for form, _ in reversed(preceding)])
    op = _lit(op, [(form, (h.site, h.seq)) for h, form in suffix], target_key)
    return op


class MeshSite(EditorEndpoint):
    """One site of the fully-distributed editor.

    An :class:`~repro.session.EditorEndpoint` over the raw transport
    (the mesh baseline runs on perfect channels); causal-order delivery
    is an *editor-level* hold-back, kept in the same shared
    :class:`~repro.session.HoldbackQueue` the reliability transport
    uses -- streams are sender sites, sequence numbers are the sender's
    per-site generation indices (``record.vc[record.site]``), and the
    causal gate checks the remaining vector components.
    """

    def __init__(
        self,
        sim: Scheduler,
        pid: int,
        n_sites: int,
        initial_document: str = "",
        tracer: Tracer | None = None,
    ) -> None:
        super().__init__(sim, pid, tracer=tracer)
        self.n_sites = n_sites
        self.initial_document = initial_document
        self.checkpoint = initial_document  # base document after compaction
        self.document = initial_document
        self.vc = VectorClock.zero(n_sites)
        self.seq = 0
        self.log: list[MeshOp] = []  # delivered, uncompacted ops, canonical order
        self.hold_back: HoldbackQueue[MeshOp] = HoldbackQueue()
        self.delivered_ids: list[str] = []
        self.compacted_ops = 0
        # Knowledge vectors: known_vc[j] = the latest generation clock
        # received from site j (its delivered-op counts at that moment).
        # Row self is our own clock.  This is the matrix-clock row set,
        # at zero extra wire cost: every operation already carries its
        # generation vector.
        self.known_vc: list[VectorClock] = [
            VectorClock.zero(n_sites) for _ in range(n_sites)
        ]

    # -- local editing --------------------------------------------------------

    def generate(self, op: Operation) -> MeshOp:
        """Generate a local operation against the current document."""
        self.seq += 1
        self.vc = self.vc.tick(self.pid)
        record = MeshOp(op=op, vc=self.vc, site=self.pid, seq=self.seq)
        if self.tracer is not None:
            self.tracer.emit(
                TraceEventKind.GENERATED, self.pid, op_id=record.op_id,
                seq=record.seq,
                timestamp=tuple(record.vc[j] for j in range(self.n_sites)),
            )
        self._integrate(record)
        for dest in range(self.n_sites):
            if dest != self.pid:
                self.send(dest, record, timestamp_bytes=record.vc.size_bytes())
        return record

    # -- receiving ------------------------------------------------------------

    def _handle_app_message(self, envelope: Envelope) -> None:
        record: MeshOp = envelope.payload
        # Stream = sender site, seq = the sender's generation index for
        # this operation (``record.vc[record.site] == record.seq``).
        self.hold_back.hold(record.site, record.seq, record)
        if self.tracer is not None:
            self.tracer.emit(
                TraceEventKind.HELD_BACK, self.pid, op_id=record.op_id,
                peer=record.site, seq=record.seq,
            )
        self._drain_hold_back()

    def _causally_ready(self, record: MeshOp) -> bool:
        """The cross-sender half of the causal delivery condition.

        The per-sender half (``record.vc[record.site]`` is exactly the
        next index from that site) is what the hold-back queue's
        sequence gating enforces; this checks the rest: every *other*
        dependency is already delivered locally.
        """
        return all(
            record.vc[j] <= self.vc[j]
            for j in range(self.n_sites)
            if j != record.site
        )

    def _drain_hold_back(self) -> None:
        for record in self.hold_back.drain(
            lambda site: self.vc[site] + 1, self._causally_ready
        ):
            self.vc = self.vc.merge(record.vc)
            self.known_vc[record.site] = record.vc
            if self.tracer is not None:
                self.tracer.emit(
                    TraceEventKind.RELEASED, self.pid, op_id=record.op_id,
                    peer=record.site, seq=record.seq, via="holdback",
                )
            self._integrate(record)
            if self.tracer is not None:
                self.tracer.emit(
                    TraceEventKind.EXECUTED, self.pid, op_id=record.op_id,
                    timestamp=tuple(record.vc[j] for j in range(self.n_sites)),
                )

    # -- canonical replay -----------------------------------------------------

    def _integrate(self, record: MeshOp) -> None:
        """Insert into the canonical log and recompute the document."""
        self.log.append(record)
        self.log.sort(key=MeshOp.order_key)
        self.delivered_ids.append(record.op_id)
        self._replay()

    def _replay(self) -> None:
        document = self.checkpoint
        forms: list[Operation] = []
        for i, record in enumerate(self.log):
            form = got_transform(record, self.log[:i], forms)
            document = form.apply(document)
            forms.append(form)
        self.document = document

    # -- log compaction ---------------------------------------------------------

    def stability_vector(self) -> VectorClock:
        """Per-site operation counts known to have been delivered by
        EVERY site (component-wise min of the knowledge vectors).

        An operation at or below this horizon is *causally stable*: FIFO
        channels guarantee every future arrival was generated after the
        sender delivered it, hence causally follows it and can never be
        concurrent with it.
        """
        self.known_vc[self.pid] = self.vc
        counts = tuple(
            min(self.known_vc[j][k] for j in range(self.n_sites))
            for k in range(self.n_sites)
        )
        return VectorClock(counts)

    def compact(self) -> int:
        """Fold stable canonical-prefix operations into the checkpoint.

        Folds the maximal canonical prefix whose operations are (a)
        causally stable and (b) causal predecessors of every remaining
        logged operation -- condition (b) keeps GOT exact, since no
        remaining or future operation will ever need to transform
        against a folded one.  Returns the number of operations folded.
        """
        stable = self.stability_vector()
        stable_prefix = 0
        for record in self.log:
            if record.vc[record.site] > stable[record.site]:
                break
            stable_prefix += 1
        # Largest stable prefix whose merged clock every remaining
        # operation dominates (concurrency *within* the folded prefix is
        # fine -- those forms are finalised together during the fold).
        fold = 0
        merged = None
        for k in range(1, stable_prefix + 1):
            vc = self.log[k - 1].vc
            merged = vc if merged is None else merged.merge(vc)
            if all(later.vc.dominates(merged) for later in self.log[k:]):
                fold = k
        if fold == 0:
            return 0
        document = self.checkpoint
        forms: list[Operation] = []
        for i, record in enumerate(self.log[:fold]):
            form = got_transform(record, self.log[:i], forms)
            document = form.apply(document)
            forms.append(form)
        self.checkpoint = document
        del self.log[:fold]
        self.compacted_ops += fold
        self._replay()
        return fold

    def clock_storage_ints(self) -> int:
        """Resident clock-state integers: N at every site."""
        return self.vc.storage_ints()

    def holdback_pending(self) -> bool:
        """Causal hold-back is editor-level here: quiescence must see it."""
        return bool(self.hold_back)


class MeshSession(SessionBase):
    """A fully-distributed editing session over a mesh topology."""

    def __init__(
        self,
        n_sites: int,
        initial_document: str = "",
        latency_factory: Callable[[int, int], LatencyModel] | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if n_sites < 2:
            raise ValueError("a mesh session needs at least two sites")
        self.sim = Simulator()
        self.tracer = tracer
        if tracer is not None:
            tracer.bind_clock(lambda: self.sim.now)
        self.sites = [
            MeshSite(self.sim, pid, n_sites, initial_document, tracer=tracer)
            for pid in range(n_sites)
        ]
        self.topology = MeshTopology(self.sim, self.sites, latency_factory)

    def endpoints(self) -> Sequence[MeshSite]:
        return self.sites

    def generate_at(self, site: int, op: Operation, at: float) -> None:
        self.sim.schedule(at, lambda: self.sites[site].generate(op))
