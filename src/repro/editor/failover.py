"""Notifier failover: election, promotion and rewiring for the star.

The star topology's centre (the notifier, site 0) is a single point of
failure: the paper's compressed-vector-clock scheme routes *every*
operation through it.  This module removes that weakness for the
simulated deployment:

1. **Detection** -- every endpoint runs the reliability protocol with a
   bounded retransmit budget; a client whose traffic toward the centre
   exhausts the budget reports the peer dead
   (:attr:`repro.net.reliability.ReliableEndpoint.on_peer_dead`).
2. **Election** -- the :class:`FailoverManager` (a session-level
   coordination service standing in for an out-of-band membership
   directory) picks the successor: the configured *warm standby* if it
   is alive and caught up, else the lowest-id surviving client.  The
   detector sends the successor an
   :class:`~repro.editor.messages.ElectMessage`; the successor confirms
   the suspicion with a bounded liveness probe before anything
   irreversible happens.
3. **Promotion** -- the successor freezes its client role, announces
   itself with :class:`~repro.editor.messages.PromoteMessage`, collects
   one :class:`~repro.editor.messages.StateContribution` per survivor,
   and :meth:`repro.editor.star_notifier.StarNotifier.promoted_from`
   rebuilds ``SV_0`` from the successor's replica (the *baseline*) and
   its per-origin execution counts.
4. **Re-admission** -- each survivor is served a failover snapshot (the
   crash-resync path under a new *notifier epoch*) and replays its
   stashed unacknowledged operations against the baseline, deduplicated
   by the snapshot's ``incorporated`` id set.  In-flight pre-crash
   envelopes are fenced by the abandoned-peer guard and the
   ``(notifier_epoch, seq)`` link state.

Scope: one failover per session.  Operations the dead centre
acknowledged but never relayed are rolled back with the baseline
(counted in :attr:`StarNotifier.failover_losses`); every surviving
replica converges on the baseline plus post-failover operations, and
the trace-vs-oracle happens-before cross-check stays exact across the
epoch boundary (see :mod:`repro.obs.analysis`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.editor.messages import ElectMessage
from repro.editor.star_client import StarClient
from repro.editor.star_notifier import StarNotifier

if TYPE_CHECKING:
    from repro.editor.star import StarSession


class FailoverManager:
    """Session-level failover coordination for one star session.

    Holds the pieces an out-of-band membership service would: who the
    current centre is, which client is the designated warm standby, and
    whether an election is already in flight.  All message traffic
    (election, promotion, contributions, snapshots) still travels over
    the simulated -- faulty -- network; the manager only routes local
    decisions and wires channels.
    """

    def __init__(self, session: "StarSession", standby_site: int | None = None) -> None:
        if standby_site is not None and not 1 <= standby_site <= len(session.clients):
            raise ValueError(
                f"standby site must be one of 1..{len(session.clients)}, "
                f"got {standby_site}"
            )
        self.session = session
        self.standby_site = standby_site
        self.center_pid = 0
        self.notifier_epoch = 0
        self.promoted = False
        self._election_open = False
        self._promoting_client: StarClient | None = None

    # -- crash detection -----------------------------------------------------

    def peer_dead(self, reporter: object, peer: int) -> None:
        """A transport exhausted its retransmit budget toward ``peer``.

        Routing: the promoting successor giving up on a member ends that
        member's contribution wait; a client giving up on the current
        centre opens an election; everything else (the old notifier
        giving up on a crashed client, post-promotion stragglers) is
        left to the park-and-resurrect machinery.
        """
        if self._promoting_client is not None and reporter is self._promoting_client:
            self._promoting_client._member_dead(peer)
            return
        if (
            peer == self.center_pid
            and not self.promoted
            and isinstance(reporter, StarClient)
            and not reporter.promoted
        ):
            self._suspect_center(reporter)

    def _suspect_center(self, detector: "StarClient") -> None:
        if self._election_open or self.promoted:
            return
        successor = self._pick_successor()
        if successor is None:
            return  # no live client left; the session is simply over
        self._election_open = True
        epoch = self.notifier_epoch + 1
        if detector is successor:
            successor._on_elect(epoch)
            return
        self.session.topology.connect_pair(detector, successor)
        detector.send(
            successor.pid, ElectMessage(notifier_epoch=epoch),
            timestamp_bytes=0, kind="elect",
        )

    def _pick_successor(self) -> "StarClient | None":
        candidates = [
            client
            for client in self.session.clients
            if not client.transport.crashed and client.active and not client.promoted
        ]
        if not candidates:
            return None
        if self.standby_site is not None:
            for client in candidates:
                if client.pid == self.standby_site:
                    return client
        return min(candidates, key=lambda client: client.pid)

    def election_aborted(self, successor: "StarClient") -> None:
        """The suspected centre answered the liveness probe."""
        self._election_open = False

    # -- promotion -----------------------------------------------------------

    def begin_promotion(self, successor: "StarClient", epoch: int) -> list[int]:
        """The successor confirmed the crash: record the new centre and
        wire it to every surviving member; returns their site ids."""
        self._promoting_client = successor
        self.center_pid = successor.pid
        self.notifier_epoch = epoch
        members = [
            client
            for client in self.session.clients
            if client is not successor and not client.transport.crashed
        ]
        for member in members:
            self.session.topology.connect_pair(successor, member)
        return [member.pid for member in members]

    def complete_promotion(
        self, successor: "StarClient", contributions: dict
    ) -> StarNotifier:
        """All contributions are in: build and install the new notifier."""
        notifier = StarNotifier.promoted_from(
            successor,
            self.notifier_epoch,
            contributions,
            n_sites=len(self.session.clients),
        )
        self._promoting_client = None
        self.promoted = True
        self.session.promoted_notifier = notifier
        return notifier

    # -- routing for restarts --------------------------------------------------

    def route_restart(self, client: "StarClient") -> int:
        """Where a restarting client should resync; wires the channel if
        the centre moved while the client was down."""
        if self.center_pid != 0:
            successor = self.session.client(self.center_pid)
            self.session.topology.connect_pair(successor, client)
        return self.center_pid
