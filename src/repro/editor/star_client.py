"""The star editor's client role (sites ``1..N``).

A :class:`StarClient` is an :class:`~repro.session.EditorEndpoint`: a
simulated process that *owns* its transport (raw FIFO by default, the
reliability protocol when the session runs with faults) and implements
the paper's client-side rules on top of it -- execute local operations
immediately, timestamp with the 2-element state vector ``SV_i``,
check incoming notifier operations for concurrency with formula (5),
transform against the not-yet-acknowledged local operations, execute.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import TYPE_CHECKING, Any

from repro.clocks.events import EventLog
from repro.clocks.vector import concurrent as vc_concurrent
from repro.core.concurrency import client_concurrent
from repro.core.history import HistoryBuffer, HistoryEntry
from repro.core.state_vector import ClientStateVector
from repro.core.timestamp import OriginKind
from repro.editor.messages import (
    ElectMessage,
    OpMessage,
    PromoteMessage,
    ResyncRequest,
    SnapshotMessage,
    StateContribution,
)
from repro.net.reliability import ReliabilityConfig, ReliableEndpoint
from repro.net.scheduler import Scheduler
from repro.net.transport import Envelope
from repro.obs.tracer import TraceEventKind, Tracer
from repro.ot.types import get_type
from repro.session import CheckRecord, ConsistencyError, EditorEndpoint

if TYPE_CHECKING:
    from repro.editor.failover import FailoverManager
    from repro.editor.star_notifier import StarNotifier


class UndoError(RuntimeError):
    """Raised when the requested undo is not available."""


def execute_remote(ot: Any, state: Any, op: Any, transform_enabled: bool) -> Any:
    """Execute a remote operation, best-effort when transformation is off.

    The transformation-off mode exists to reproduce the paper's Fig. 2
    failure behaviour; a naive replica clamps out-of-range positions
    instead of crashing (see :func:`repro.ot.operations.apply_clamped`).
    """
    if transform_enabled:
        return ot.apply(state, op)
    from repro.ot.operations import Operation, apply_clamped

    if isinstance(op, Operation) and isinstance(state, str):
        return apply_clamped(state, op)
    return ot.apply(state, op)


class StarClient(EditorEndpoint):
    """A collaborating site ``i != 0``."""

    def __init__(
        self,
        sim: Scheduler,
        site_id: int,
        ot_type_name: str = "text-positional",
        initial_state: Any = None,
        event_log: EventLog | None = None,
        verify_with_oracle: bool = False,
        transform_enabled: bool = True,
        record_checks: bool = True,
        joining: bool = False,
        reliability: ReliabilityConfig | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if site_id <= 0:
            raise ValueError(f"client site ids are 1..N, got {site_id}")
        super().__init__(sim, site_id, reliability, tracer)
        self.ot = get_type(ot_type_name)
        self.document = self.ot.initial() if initial_state is None else initial_state
        self.sv = ClientStateVector(site_id)
        self.hb = HistoryBuffer()
        # Local operations not yet reflected in a notifier timestamp; each
        # element is the HistoryEntry so re-transformation updates the HB.
        # Acknowledgement pops from the left on every arrival: a deque.
        self.pending: deque[HistoryEntry] = deque()
        self.event_log = event_log
        self.verify_with_oracle = verify_with_oracle
        self.transform_enabled = transform_enabled
        # Diagnostic trace of every concurrency check.  O(ops * HB) memory:
        # keep it on for scenario replays and tests, off for long sessions.
        self.record_checks = record_checks
        self.checks: list[CheckRecord] = []
        self.executed_op_ids: list[str] = []
        # Late joiners start inactive and are activated by the snapshot.
        self.active = not joining
        # Per-client counter: op ids must not leak across sessions in one
        # process, or replays stop being reproducible.  Survives crashes
        # (ids are ground-truth bookkeeping, not volatile editor state).
        self._op_ids = itertools.count(1)
        # Undo bookkeeping, independent of the HB so garbage collection
        # cannot take a legitimately undoable operation away.
        self._last_local_entry: HistoryEntry | None = None
        self._last_exec_was_local = False
        self.crash_count = 0
        self._recovering = False
        # -- failover state (see repro.editor.failover) ---------------------
        # The pid this spoke currently points at; re-homed on promotion.
        self.center = 0
        self.notifier_epoch = 0
        # Set by the session when a FailoverManager coordinates this star.
        self.failover: FailoverManager | None = None
        # Successor-election bookkeeping: only maintained when running
        # over the reliability protocol (crash detection needs it).
        self._track_failover = reliability is not None
        # Per-origin counts of executed centre broadcasts, and the set of
        # original op ids embodied in this replica: together, one
        # StateContribution -- the evidence from which a successor
        # rebuilds SV_0 and deduplicates replays.
        self._received_per_origin: dict[int, int] = {}
        self._incorporated: set[str] = set()
        self._abandoned: set[int] = set()
        self._elect_epoch = 0
        self._promoting = False
        self.promoted = False
        self._promoted_to: StarNotifier | None = None
        self._failover_pending = False
        self._failover_stash: list[tuple[str, Any]] = []
        self._buffered_promotion: list[Envelope] = []
        self._awaiting_contrib: set[int] = set()
        self._contributions: dict[int, StateContribution | None] = {}
        # Degraded-mode survival: with a positive limit, local edits
        # generated while the star is leaderless (promotion or handoff
        # in progress) queue here instead of being dropped, bounded so a
        # chatty user cannot grow memory without bound, and are replayed
        # exactly once after the successor's baseline is installed.  The
        # default of 0 preserves the simulator's lossy semantics.
        self.degraded_limit = 0
        self._degraded_queue: deque[Any] = deque()

    # -- local editing -------------------------------------------------------

    def generate(self, op: Any, op_id: str | None = None) -> str | None:
        """Generate, execute and propagate a local operation.

        Returns the operation id.  Per the paper: execute immediately,
        increment ``SV_i[2]``, timestamp with the current ``SV_i``,
        propagate to site 0, and buffer in the local HB.  While the
        client is crashed or awaiting its recovery snapshot the edit is
        dropped (returns ``None``).
        """
        if self.promoted:
            # This site became the centre of the star: local edits route
            # into the promoted notifier's centre-local generation path.
            assert self._promoted_to is not None
            op_id = op_id or f"c{self.pid}_{next(self._op_ids)}"
            return self._promoted_to.generate_local(op, op_id)
        if not self.active:
            if self._failover_pending or self._promoting:
                if self.degraded_limit > 0:
                    # Leaderless but alive: queue the edit for replay
                    # once the successor's baseline lands.
                    if len(self._degraded_queue) < self.degraded_limit:
                        self._degraded_queue.append(op)
                        self.rel_stats.degraded_queued += 1
                    else:
                        self.rel_stats.degraded_overflow += 1
                        self.rel_stats.lost_local_edits += 1
                    return None
                self.rel_stats.lost_local_edits += 1
                return None
            if self.transport.crashed or self._recovering:
                # A user edit during an outage is simply lost, like
                # keystrokes into a dead terminal; count it and move on.
                self.rel_stats.lost_local_edits += 1
                return None
            raise RuntimeError(
                f"site {self.pid} has not received its join snapshot yet"
            )
        op_id = op_id or f"c{self.pid}_{next(self._op_ids)}"
        inverse = None
        invert = getattr(self.ot, "invert", None)
        if invert is not None:
            try:
                inverse = invert(self.document, op)
            except (TypeError, ValueError):
                inverse = None  # op shape the type cannot invert
        self.document = self.ot.apply(self.document, op)
        self.sv.record_local_execution()
        ts = self.sv.timestamp()
        entry = HistoryEntry(
            op=op,
            timestamp=ts,
            origin_site=self.pid,
            origin_kind=OriginKind.LOCAL,
            op_id=op_id,
            executed_at=self.sim.now,
            inverse=inverse,
        )
        self.hb.append(entry)
        self.pending.append(entry)
        self.executed_op_ids.append(op_id)
        self._last_local_entry = entry
        self._last_exec_was_local = True
        if self.event_log is not None:
            self.event_log.generate(self.pid, op_id)
        if self.tracer is not None:
            self.tracer.emit(
                TraceEventKind.GENERATED, self.pid, op_id=op_id,
                timestamp=tuple(ts.as_paper_list()),
            )
        if self._track_failover:
            self._incorporated.add(op_id)
        origin_wall = None
        if self.span_clock is not None:
            origin_wall = self.span_clock()
            if self.tracer is not None:
                self.tracer.emit(
                    TraceEventKind.SPAN, self.pid, op_id=op_id,
                    peer=self.pid, via="generate", origin_time=origin_wall,
                )
        message = OpMessage(op=op, timestamp=ts, origin_site=self.pid,
                            op_id=op_id, origin_wall=origin_wall)
        self.send(self.center, message, timestamp_bytes=ts.size_bytes())
        return op_id

    # -- receiving from the notifier ------------------------------------------

    def on_message(self, envelope: Envelope) -> None:
        """Drop traffic from an abandoned centre before it touches the
        transport: in-flight packets from the dead notifier must neither
        pollute the holdback buffer of a fresh link nor trigger acks."""
        if envelope.source in self._abandoned:
            self.rel_stats.stale_epoch_discarded += 1
            return
        super().on_message(envelope)

    def _handle_app_message(self, envelope: Envelope) -> None:
        payload = envelope.payload
        if isinstance(payload, ElectMessage):
            self._on_elect(payload.notifier_epoch)
            return
        if self._promoting:
            # Collecting contributions; anything else racing the window
            # is either a restarting client's resync (serve it after
            # promotion) or stale traffic.
            if isinstance(payload, StateContribution):
                self._on_contribution(envelope.source, payload)
            elif isinstance(payload, ResyncRequest):
                self._buffered_promotion.append(envelope)
            else:
                self.rel_stats.stale_epoch_discarded += 1
            return
        if isinstance(payload, PromoteMessage):
            self._on_promote(payload)
            return
        if isinstance(envelope.payload, SnapshotMessage):
            self._install_snapshot(envelope.payload)
            return
        if not self.active:
            raise ConsistencyError(
                f"site {self.pid} received an operation before its snapshot "
                "(FIFO violated?)"
            )
        message: OpMessage = envelope.payload
        ts = message.timestamp
        # The full formula-(5) sweep over the HB is O(|HB|) per arrival
        # and only needed when recording or oracle-verifying checks; the
        # FIFO analysis (see _concurrency_pass) proves the concurrent
        # set equals the unacknowledged-pending set, which the fast path
        # uses directly.  The slow path cross-checks the two.
        diagnostics = self.record_checks or self.verify_with_oracle
        concurrent_entries = self._concurrency_pass(message) if diagnostics else None
        # FIFO acknowledgement: T[2] local operations are now reflected
        # in the notifier's state; they stop being "pending".
        while self.pending and self.pending[0].timestamp.second <= ts.second:
            self.pending.popleft()
        if self.transform_enabled and concurrent_entries is not None:
            expected = [entry.op_id for entry in self.pending]
            actual = [entry.op_id for entry in concurrent_entries]
            if expected != actual:
                raise ConsistencyError(
                    f"site {self.pid}: formula (5) concurrent set {actual} != "
                    f"pending set {expected} for {message.op_id}"
                )
        new_op = message.op
        if self.transform_enabled:
            if self.pending and self.tracer is not None:
                self.tracer.emit(
                    TraceEventKind.TRANSFORMED, self.pid, op_id=message.op_id,
                    source_op_id=message.source_op_id,
                )
            for entry in self.pending:
                new_op, updated = self.ot.transform(
                    new_op, entry.op, message.origin_site < entry.origin_site
                )
                entry.op = updated
        self.document = execute_remote(
            self.ot, self.document, new_op, self.transform_enabled
        )
        self.sv.record_remote_execution()
        self.hb.append(
            HistoryEntry(
                op=new_op,
                timestamp=ts,
                origin_site=message.origin_site,
                origin_kind=OriginKind.FROM_CENTER,
                op_id=message.op_id,
                executed_at=self.sim.now,
            )
        )
        self.executed_op_ids.append(message.op_id)
        if self._track_failover:
            self._received_per_origin[message.origin_site] = (
                self._received_per_origin.get(message.origin_site, 0) + 1
            )
            self._incorporated.add(message.source_op_id or message.op_id)
        # A remote execution invalidates undo: the stored inverse is no
        # longer defined on the current document.
        self._last_exec_was_local = False
        if self.event_log is not None:
            self.event_log.execute(self.pid, message.op_id)
        if self.tracer is not None:
            self.tracer.emit(
                TraceEventKind.EXECUTED, self.pid, op_id=message.op_id,
                timestamp=tuple(ts.as_paper_list()),
            )
        if message.origin_wall is not None:
            self._observe_end_to_end(message)

    def _observe_end_to_end(self, message: OpMessage) -> None:
        """Close the causal span of an arrival stamped at its origin.

        Emits the ``execute`` span (uncorrected: this site's clock minus
        the origin site's stamp; :mod:`repro.obs.spans` removes the
        pairwise skew offline) and feeds the live end-to-end gauge the
        telemetry sampler publishes.
        """
        if self.tracer is not None:
            self.tracer.emit(
                TraceEventKind.SPAN, self.pid, op_id=message.op_id,
                peer=message.origin_site, source_op_id=message.source_op_id,
                via="execute", origin_time=message.origin_wall,
            )
        if self.span_clock is not None and message.origin_wall is not None:
            self.e2e_window.append(self.span_clock() - message.origin_wall)

    def _concurrency_pass(self, message: OpMessage) -> list[HistoryEntry]:
        """Run formula (5) over the HB; record and (optionally) verify."""
        out: list[HistoryEntry] = []
        for entry in self.hb:
            verdict = client_concurrent(message.timestamp, entry.timestamp, entry.origin_kind)
            if self.record_checks:
                self.checks.append(
                    CheckRecord(
                        site=self.pid,
                        new_op_id=message.op_id,
                        buffered_op_id=entry.op_id,
                        verdict=verdict,
                        new_timestamp=message.timestamp.as_paper_list(),
                        buffered_timestamp=list(entry.timestamp.as_paper_list()),
                    )
                )
            if self.verify_with_oracle and self.event_log is not None:
                oracle = vc_concurrent(
                    self.event_log.generation_clock(message.op_id),
                    self.event_log.generation_clock(entry.op_id),
                )
                if oracle != verdict:
                    raise ConsistencyError(
                        f"site {self.pid}: compressed verdict {verdict} != oracle "
                        f"{oracle} for ({message.op_id}, {entry.op_id})"
                    )
            if verdict:
                out.append(entry)
        return out

    def undo_last(self) -> str:
        """Undo this site's most recent operation (undo-as-new-operation).

        Available while the operation is still the site's latest
        execution: its stored inverse is then defined on the current
        document, so the undo is generated and propagated like any other
        local operation -- remote sites need no special handling, and
        concurrent remote operations are transformed against the undo
        exactly like against an ordinary edit.

        Raises :class:`UndoError` if the last executed operation was not
        a local one (a remote operation arrived since -- the inverse's
        context is gone) or the OT type does not support inversion.

        The undoable entry is tracked independently of the HB:
        ``collect_garbage`` may prune the site's latest local entry (it
        stops being *pending* the moment the notifier acknowledges it)
        but the operation remains perfectly undoable -- the inverse is
        defined on the current document as long as nothing remote has
        executed since.
        """
        entry = self._last_local_entry
        if entry is None:
            raise UndoError(f"site {self.pid} has nothing to undo")
        if not self._last_exec_was_local:
            raise UndoError(
                f"site {self.pid}: a remote operation executed after the last "
                "local one; undo context is gone"
            )
        if entry.inverse is None:
            raise UndoError(
                f"OT type {self.ot.name!r} does not support inversion"
            )
        return self.generate(entry.inverse)

    def _install_snapshot(self, snapshot: SnapshotMessage) -> None:
        """Adopt the notifier's state and seed the compressed clock.

        ``SV_i[1] := base_count``: the snapshot stands in for the first
        ``base_count`` operations of the notifier's stream, so all later
        timestamp arithmetic lines up with clients that were present from
        the start.  A recovering client additionally restores
        ``SV_i[2] := own_count`` -- the notifier's count of this site's
        operations -- so post-restart timestamps continue the numbering
        the notifier's formula-(7) bookkeeping expects.

        A client mid-handoff (``PromoteMessage`` processed, failover
        snapshot awaited) takes the failover install path instead: the
        successor's baseline replaces the replica wholesale and stashed
        pending operations are replayed against it.
        """
        if self._failover_pending:
            self._install_failover_snapshot(snapshot)
            return
        if self.active:
            raise ConsistencyError(f"site {self.pid} received a second snapshot")
        recovering = self._recovering
        self.notifier_epoch = snapshot.notifier_epoch
        self.document = snapshot.document
        if self._recovering:
            self.sv = ClientStateVector(
                self.pid,
                received_from_center=snapshot.base_count,
                generated_locally=snapshot.own_count,
            )
            self._recovering = False
            self.rel_stats.recoveries += 1
            if self.event_log is not None and snapshot.origin_clock is not None:
                self.event_log.absorb_snapshot(self.pid, snapshot.origin_clock)
        else:
            self.sv.received_from_center = snapshot.base_count
        self.active = True
        if self.tracer is not None:
            self.tracer.emit(
                TraceEventKind.RECOVERED, self.pid, peer=self.center,
                epoch=self.crash_count if recovering else 0,
                via="resync" if recovering else "join",
            )

    # -- notifier failover -------------------------------------------------------

    def _reliable_transport(self) -> ReliableEndpoint:
        transport = self.transport
        assert isinstance(transport, ReliableEndpoint)  # failover demands it
        return transport

    def _abandon_center_link(self, peer: int) -> None:
        """Void reliability state toward a dead centre, if any exists.

        Over a raw transport (the TCP cluster without ``--reliability``)
        there is no per-peer link state to void -- the socket EOF already
        tore the connection down -- so this is a no-op there.
        """
        transport = self.transport
        if isinstance(transport, ReliableEndpoint):
            transport.abandon_peer(peer)

    def _on_elect(self, epoch: int, confirmed: bool = False) -> None:
        """An ``ElectMessage`` arrived: confirm the suspicion, then promote.

        The election is deduplicated by epoch.  Over the reliability
        protocol the suspicion is confirmed with a bounded liveness
        probe before anything irreversible happens -- a retransmit-budget
        give-up can be a false alarm under pathological (but survivable)
        loss.  Over a raw wire transport the trigger is a TCP EOF, which
        is definitive (the kernel observed the peer's socket close), so
        promotion starts immediately; a caller that has its own
        definitive evidence (the cluster coordinator saw the EOF itself)
        passes ``confirmed`` to skip the probe even over reliability.
        """
        if self.failover is None or self.promoted or self._promoting:
            return
        if self._elect_epoch >= epoch:
            return  # duplicate election signal
        self._elect_epoch = epoch
        self.rel_stats.elections += 1
        if self.tracer is not None:
            self.tracer.emit(
                TraceEventKind.ELECTED, self.pid, peer=self.center, epoch=epoch,
            )
        if not confirmed and isinstance(self.transport, ReliableEndpoint):
            self._reliable_transport().probe_peer(
                self.center,
                on_alive=self._election_aborted,
                on_dead=self._begin_promotion,
            )
        else:
            self._begin_promotion(self.center)

    def _election_aborted(self, peer: int) -> None:
        """The centre answered the probe: false alarm, stand down."""
        self._elect_epoch = 0
        if self.failover is not None:
            self.failover.election_aborted(self)

    def _begin_promotion(self, peer: int) -> None:
        """The probe went unanswered: take over as the new centre.

        Abandons the dead centre's link, freezes client-role editing and
        asks every surviving member for a :class:`StateContribution`;
        promotion completes when all have reported (or been given up
        on).
        """
        manager = self.failover
        if manager is None or self.promoted or self._promoting:
            return
        self._promoting = True
        self.active = False
        old_center = self.center
        self._abandoned.add(old_center)
        self._abandon_center_link(old_center)
        # Our own unacknowledged operations are already embodied in our
        # replica -- the promotion baseline; nothing to stash or replay.
        self.pending = deque()
        epoch = self._elect_epoch
        members = manager.begin_promotion(self, epoch)
        self._awaiting_contrib = set(members)
        self._contributions = {}
        for member in members:
            self.send(
                member,
                PromoteMessage(successor=self.pid, notifier_epoch=epoch),
                timestamp_bytes=0,
                kind="promote",
            )
        if not self._awaiting_contrib:
            self._finish_promotion()

    def _on_contribution(self, source: int, contribution: StateContribution) -> None:
        if source not in self._awaiting_contrib:
            return  # duplicate or post-deadline report
        self._awaiting_contrib.discard(source)
        self._contributions[source] = contribution
        if not self._awaiting_contrib:
            self._finish_promotion()

    def _member_dead(self, peer: int) -> None:
        """Give up on a member that went silent during collection."""
        if self._promoting and peer in self._awaiting_contrib:
            self._awaiting_contrib.discard(peer)
            self._contributions[peer] = None
            if not self._awaiting_contrib:
                self._finish_promotion()

    def _finish_promotion(self) -> None:
        self._promoting = False
        self.promoted = True
        manager = self.failover
        assert manager is not None
        notifier = manager.complete_promotion(self, self._contributions)
        self._promoted_to = notifier
        # Hand over the resync requests that raced the promotion window.
        buffered, self._buffered_promotion = self._buffered_promotion, []
        for envelope in buffered:
            notifier._handle_app_message(envelope)
        # Edits the user typed during the promotion window route into
        # the promoted notifier's centre-local generation path now.
        self._drain_degraded_queue()

    def _drain_degraded_queue(self) -> None:
        """Replay edits queued while leaderless, exactly once each.

        These operations were never timestamped, sent, or given ids --
        ``generate`` queued the raw edit and returned ``None`` -- so the
        replay is an ordinary generation against the post-failover
        replica (fresh ids, fresh timestamps, no dedup concern), with
        positions clamped to the adopted baseline.
        """
        from repro.ot.operations import Operation, OperationError, clamp_to

        queued, self._degraded_queue = self._degraded_queue, deque()
        for op in queued:
            replay_op = op
            if isinstance(replay_op, Operation) and isinstance(self.document, str):
                replay_op = clamp_to(self.document, replay_op)
            try:
                self.generate(replay_op)
            except OperationError:
                self.rel_stats.lost_local_edits += 1
                continue
            self.rel_stats.degraded_replayed += 1

    def _on_promote(self, message: PromoteMessage) -> None:
        """Re-home the spoke to the successor and report our state."""
        if message.notifier_epoch <= self.notifier_epoch:
            return  # duplicate promotion announcement
        self.notifier_epoch = message.notifier_epoch
        old_center, self.center = self.center, message.successor
        self._abandoned.add(old_center)
        self._abandon_center_link(old_center)
        # Unacknowledged local operations may or may not be embodied in
        # the successor's baseline; stash them for dedup-and-replay once
        # the failover snapshot arrives.
        self._failover_stash = [(entry.op_id, entry.op) for entry in self.pending]
        self._failover_pending = True
        self.active = False
        if self.tracer is not None:
            self.tracer.emit(
                TraceEventKind.HANDOFF, self.pid, peer=message.successor,
                epoch=message.notifier_epoch,
            )
        self.send(
            self.center,
            StateContribution(
                site=self.pid,
                received_from_center=self.sv.received_from_center,
                generated_locally=self.sv.generated_locally,
                received_per_origin=dict(self._received_per_origin),
                pending=tuple(self._failover_stash),
                document=self.document,
            ),
            timestamp_bytes=0,
            kind="contrib",
        )

    def _install_failover_snapshot(self, snapshot: SnapshotMessage) -> None:
        """Adopt the successor's baseline, then replay stashed pendings.

        The baseline replaces the replica wholesale (operations the dead
        centre acknowledged but never relayed are rolled back with it);
        stashed operations *not* in ``snapshot.incorporated`` are
        regenerated as **new** operations -- fresh ids, fresh timestamps,
        fresh ground-truth generations -- because their old identities
        are burned into the pre-crash bookkeeping.  Positions are
        clamped to the baseline, mirroring how an editor re-applies a
        locally-buffered edit to a reverted document.
        """
        from repro.ot.operations import Operation, OperationError, clamp_to

        self.document = snapshot.document
        self.sv = ClientStateVector(
            self.pid,
            received_from_center=snapshot.base_count,
            generated_locally=snapshot.own_count,
        )
        self.hb = HistoryBuffer()
        self.pending = deque()
        self._last_local_entry = None
        self._last_exec_was_local = False
        self._failover_pending = False
        if self._recovering:
            # A crash restart that raced the failover completes here: the
            # successor's baseline is the resync it was waiting for.
            self.rel_stats.recoveries += 1
            self._recovering = False
        self.active = True
        self.notifier_epoch = snapshot.notifier_epoch
        # Successor-evidence bookkeeping restarts from the new baseline.
        self._received_per_origin = {}
        self._incorporated = set(snapshot.incorporated)
        self.rel_stats.handoffs += 1
        if self.event_log is not None and snapshot.origin_clock is not None:
            self.event_log.absorb_snapshot(self.pid, snapshot.origin_clock)
        if self.tracer is not None:
            self.tracer.emit(
                TraceEventKind.RECOVERED, self.pid, peer=self.center,
                epoch=snapshot.notifier_epoch, via="failover",
            )
        stash, self._failover_stash = self._failover_stash, []
        for op_id, op in stash:
            if op_id in snapshot.incorporated:
                self.rel_stats.replays_deduped += 1
                continue
            replay_op = op
            if isinstance(replay_op, Operation) and isinstance(self.document, str):
                replay_op = clamp_to(self.document, replay_op)
            try:
                self.generate(replay_op, op_id=f"{op_id}@f{snapshot.notifier_epoch}")
            except OperationError:
                self.rel_stats.lost_local_edits += 1
                continue
            self.rel_stats.replayed_ops += 1
        # Stashed pendings replayed first (they predate the leaderless
        # window in program order), then the degraded-mode queue.
        self._drain_degraded_queue()

    # -- crash / recovery -------------------------------------------------------

    def crash(self) -> None:
        """Lose all volatile state; messages are dropped until restart."""
        if self.transport.reliability is None:
            raise RuntimeError("crash injection requires the reliability protocol")
        self.transport.go_down()
        self.active = False
        self._recovering = False
        self.crash_count += 1
        if self.tracer is not None:
            self.tracer.emit(TraceEventKind.CRASHED, self.pid, epoch=self.crash_count)
        self.document = self.ot.initial()
        self.sv = ClientStateVector(self.pid)
        self.hb = HistoryBuffer()
        self.pending = deque()
        self._last_local_entry = None
        self._last_exec_was_local = False
        # Failover evidence is volatile editor state too.
        self._received_per_origin = {}
        self._incorporated = set()
        self._failover_pending = False
        self._failover_stash = []
        self._degraded_queue = deque()

    def restart(self) -> None:
        """Come back up and resynchronise through the snapshot path.

        Opens epoch ``crash_count``: the notifier voids the previous
        incarnation's link state when it sees the higher epoch, so stale
        in-flight traffic can never corrupt the restarted session.  The
        resync request itself travels reliably (seq 0 of the new epoch),
        so it survives drops like any other message.
        """
        if not self.transport.crashed:
            raise RuntimeError(f"site {self.pid} is not crashed")
        transport = self.transport
        assert isinstance(transport, ReliableEndpoint)  # crash() demanded it
        transport.revive()
        self._recovering = True
        # The centre may have moved while we were down; ask the failover
        # manager where the star points now (it also wires the channel).
        if self.failover is not None:
            new_center = self.failover.route_restart(self)
            if new_center != self.center:
                self._abandoned.add(self.center)
                self.center = new_center
        transport.reset_link(self.center, self.crash_count)
        self.send(
            self.center, ResyncRequest(epoch=self.crash_count),
            timestamp_bytes=0, kind="resync",
        )

    # -- maintenance -----------------------------------------------------------

    def collect_garbage(self) -> int:
        """Prune HB entries that can never again test concurrent.

        Under FIFO, FROM_CENTER entries never satisfy formula (5), and a
        LOCAL entry stops mattering once acknowledged (it left
        ``pending``).  Returns the number of entries removed.
        """
        pending_ids = {entry.op_id for entry in self.pending}
        return self.hb.garbage_collect(lambda entry: entry.op_id in pending_ids)

    def clock_storage_ints(self) -> int:
        """Resident clock-state integers: the paper's constant 2."""
        return self.sv.storage_ints()

    def local_ops_generated(self) -> int:
        """Operations this site originated: SV_i[2], the telemetry gauge.

        Survives crash/recovery because the recovered state vector is
        rebuilt from the snapshot's per-site counts.
        """
        return self.sv.generated_locally
