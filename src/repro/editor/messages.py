"""Wire formats of the star editor (the causality layer's vocabulary).

These dataclasses are what travels between clients and the notifier --
below them sits the transport layer (:mod:`repro.net.reliability`),
above them the integration logic (:mod:`repro.editor.star_client` /
:mod:`repro.editor.star_notifier`).  They are deliberately free of
behaviour so the codec (:mod:`repro.net.codec`) and both editor roles
can share them without depending on each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.timestamp import CompressedTimestamp


@dataclass(frozen=True)
class OpMessage:
    """The wire format of a propagated operation.

    ``origin_wall`` is the wall-clock instant the operation was
    generated, measured on the *origin site's* clock.  It is ``None``
    in deterministic simulator sessions (where no wall clock exists and
    the wire bytes must stay byte-identical to the paper's accounting)
    and stamped by cluster processes whose endpoints have an armed
    ``span_clock`` -- the notifier forwards it unchanged on broadcast,
    so every remote execution can measure true end-to-end latency
    against it (modulo pairwise clock skew, which
    :mod:`repro.obs.spans` estimates and corrects).
    """

    op: Any
    timestamp: CompressedTimestamp
    origin_site: int  # site the operation was originally generated at
    op_id: str
    source_op_id: str | None = None  # for notifier outputs: the input op
    origin_wall: float | None = None  # origin wall clock (span latency)


@dataclass(frozen=True)
class SnapshotMessage:
    """State transfer for a late-joining or recovering client.

    ``base_count`` is the number of notifier broadcasts the destination
    would have received so far (``sum_{j != dest} SV_0[j]``); the client
    seeds ``SV_i[1]`` with it so the compressed-timestamp arithmetic
    (formulas 1-2, 5, 7) stays exact: the snapshot "delivers" those
    operations in bulk, and the FIFO channel guarantees every later
    broadcast arrives after it.  For crash recovery ``own_count``
    additionally restores ``SV_i[2]`` (``SV_0[dest]``: the destination's
    operations the notifier had executed), and ``origin_clock`` carries
    the notifier's ground-truth vector clock at snapshot time so the
    oracle stays exact across the state transfer.
    """

    document: Any
    base_count: int
    own_count: int = 0
    origin_clock: Any = None
    # Failover extensions: the notifier epoch the snapshot belongs to
    # (0 for the original notifier) and, for failover snapshots, the
    # original client op ids already embodied in ``document`` -- the
    # receiver replays its stashed pending operations *not* in this set
    # and drops the rest as duplicates.
    notifier_epoch: int = 0
    incorporated: frozenset[str] = frozenset()


@dataclass(frozen=True)
class ResyncRequest:
    """First message of a restarted client's new epoch: "send me state"."""

    epoch: int


@dataclass(frozen=True)
class ElectMessage:
    """Crash detector to designated successor: "the centre is dead".

    ``notifier_epoch`` is the epoch the election would open (one past
    the dead notifier's); the successor deduplicates elections by it
    and confirms the suspicion with a bounded liveness probe before
    promoting itself.
    """

    notifier_epoch: int


@dataclass(frozen=True)
class PromoteMessage:
    """Successor to every survivor: "I am the centre of epoch N".

    On receipt a client re-homes its spoke to ``successor``, abandons
    the dead centre's link, stashes its unacknowledged local operations
    for replay, and answers with a :class:`StateContribution`.
    """

    successor: int
    notifier_epoch: int


@dataclass(frozen=True)
class StateContribution:
    """One survivor's state report, from which ``SV_0`` is rebuilt.

    ``received_from_center``/``generated_locally`` are the client's
    compressed ``SV_i``; ``received_per_origin`` counts the executed
    centre broadcasts by originating site (the per-site evidence behind
    the successor's reconstruction); ``pending`` lists the unacked
    local operations as ``(op_id, op)`` pairs, and ``document`` the
    client's replica -- both cross-checked by the successor to account
    for rolled-back and lost operations before it re-admits the client
    through the snapshot path.
    """

    site: int
    received_from_center: int
    generated_locally: int
    received_per_origin: dict[int, int] = field(default_factory=dict)
    pending: tuple[tuple[str, Any], ...] = ()
    document: Any = None
