"""Wire formats of the star editor (the causality layer's vocabulary).

These dataclasses are what travels between clients and the notifier --
below them sits the transport layer (:mod:`repro.net.reliability`),
above them the integration logic (:mod:`repro.editor.star_client` /
:mod:`repro.editor.star_notifier`).  They are deliberately free of
behaviour so the codec (:mod:`repro.net.codec`) and both editor roles
can share them without depending on each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.timestamp import CompressedTimestamp


@dataclass(frozen=True)
class OpMessage:
    """The wire format of a propagated operation."""

    op: Any
    timestamp: CompressedTimestamp
    origin_site: int  # site the operation was originally generated at
    op_id: str
    source_op_id: str | None = None  # for notifier outputs: the input op


@dataclass(frozen=True)
class SnapshotMessage:
    """State transfer for a late-joining or recovering client.

    ``base_count`` is the number of notifier broadcasts the destination
    would have received so far (``sum_{j != dest} SV_0[j]``); the client
    seeds ``SV_i[1]`` with it so the compressed-timestamp arithmetic
    (formulas 1-2, 5, 7) stays exact: the snapshot "delivers" those
    operations in bulk, and the FIFO channel guarantees every later
    broadcast arrives after it.  For crash recovery ``own_count``
    additionally restores ``SV_i[2]`` (``SV_0[dest]``: the destination's
    operations the notifier had executed), and ``origin_clock`` carries
    the notifier's ground-truth vector clock at snapshot time so the
    oracle stays exact across the state transfer.
    """

    document: Any
    base_count: int
    own_count: int = 0
    origin_clock: Any = None


@dataclass(frozen=True)
class ResyncRequest:
    """First message of a restarted client's new epoch: "send me state"."""

    epoch: int
