"""Group editors: the paper's star-topology system and the mesh baseline.

* :mod:`repro.editor.star` -- the Web-based REDUCE architecture of the
  paper: N client sites and a central notifier (site 0), compressed
  2-element timestamps on every message, transformation at both ends,
  concurrency detection via formulas (5) and (7).
* :mod:`repro.editor.mesh` -- the fully-distributed baseline (the
  original REDUCE deployment): full N-element vector clocks, causal
  broadcast, and GOT-style transformation over a canonical total order.

Both editors are generic over the :class:`repro.ot.types.OTType`
contract, record ground-truth event logs, and account every byte on the
wire for the benchmarks.
"""

from repro.editor.star import StarClient, StarNotifier, StarSession
from repro.editor.mesh import MeshSession, MeshSite

__all__ = [
    "StarClient",
    "StarNotifier",
    "StarSession",
    "MeshSite",
    "MeshSession",
]
