"""Group editors: the paper's star-topology system and the mesh baseline.

* :mod:`repro.editor.star` -- the Web-based REDUCE architecture of the
  paper: N client sites and a central notifier (site 0), compressed
  2-element timestamps on every message, transformation at both ends,
  concurrency detection via formulas (5) and (7).  The roles live in
  :mod:`repro.editor.star_client` / :mod:`repro.editor.star_notifier`,
  the wire formats in :mod:`repro.editor.messages`.
* :mod:`repro.editor.mesh` -- the fully-distributed baseline (the
  original REDUCE deployment): full N-element vector clocks, causal
  broadcast, and GOT-style transformation over a canonical total order.

Both editors are generic over the :class:`repro.ot.types.OTType`
contract, record ground-truth event logs, and account every byte on the
wire for the benchmarks.  They share the session layer
(:mod:`repro.session`) and the transport layer
(:mod:`repro.net.reliability`); this package re-exports the full
editor-facing surface of both for convenience and backwards
compatibility.
"""

from repro.editor.messages import OpMessage, ResyncRequest, SnapshotMessage
from repro.editor.mesh import MeshOp, MeshSession, MeshSite, got_transform
from repro.editor.star import StarSession
from repro.editor.star_client import StarClient, UndoError, execute_remote
from repro.editor.star_notifier import PendingOp, StarNotifier
from repro.net.reliability import (
    ReliabilityConfig,
    ReliabilityStats,
    ReliablePacket,
    ReliableEndpoint,
)
from repro.session import CheckRecord, ConsistencyError

__all__ = [
    "CheckRecord",
    "ConsistencyError",
    "MeshOp",
    "MeshSession",
    "MeshSite",
    "OpMessage",
    "PendingOp",
    "ReliabilityConfig",
    "ReliabilityStats",
    "ReliablePacket",
    "ReliableEndpoint",
    "ResyncRequest",
    "SnapshotMessage",
    "StarClient",
    "StarNotifier",
    "StarSession",
    "UndoError",
    "execute_remote",
    "got_transform",
]
