"""Positional string operations used throughout the paper.

The paper (Section 2.2) works with two primitive editing operations on a
shared text document:

* ``Insert[text, pos]`` -- insert string ``text`` at character position
  ``pos`` (0-based; the paper's example "insert at position 1 between
  'A' and 'BCDE'" uses the same 0-based convention).
* ``Delete[count, pos]`` -- delete ``count`` characters starting at
  position ``pos``.

Operations carry an *intention*: the effect they would have on the
document state from which they were generated.  Transformation (see
:mod:`repro.ot.transform`) reformulates positions so that executing the
transformed operation on a *newer* state realises the same intention.

Design notes
------------
Transforming a ``Delete`` against an ``Insert`` that lands strictly
inside the deleted region splits the deletion in two.  Rather than
complicate every call-site with lists, the result of such a split is an
:class:`OperationGroup`, itself an :class:`Operation` that applies its
members left-to-right (members are pre-adjusted so this is well-defined).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence, Union


class OperationError(ValueError):
    """Raised when an operation cannot be applied to a document state."""


@dataclass(frozen=True)
class Operation:
    """Abstract base class for editing operations.

    Concrete operations are immutable value objects; transformation
    functions return new instances rather than mutating their inputs.
    """

    def apply(self, document: str) -> str:
        """Return the document produced by executing this operation."""
        raise NotImplementedError

    def is_identity(self) -> bool:
        """True when executing the operation never changes any document."""
        return False

    def primitive_count(self) -> int:
        """Number of primitive (non-group) operations contained."""
        return 1


@dataclass(frozen=True)
class Insert(Operation):
    """``Insert[text, pos]``: insert ``text`` at character index ``pos``."""

    text: str
    pos: int

    def __post_init__(self) -> None:
        if self.pos < 0:
            raise OperationError(f"insert position must be >= 0, got {self.pos}")

    def apply(self, document: str) -> str:
        if self.pos > len(document):
            raise OperationError(
                f"insert position {self.pos} beyond document length {len(document)}"
            )
        return document[: self.pos] + self.text + document[self.pos :]

    def is_identity(self) -> bool:
        return self.text == ""

    @property
    def end(self) -> int:
        """Index one past the last inserted character (after execution)."""
        return self.pos + len(self.text)

    def __repr__(self) -> str:  # match the paper's notation
        return f"Insert[{self.text!r}, {self.pos}]"


@dataclass(frozen=True)
class Delete(Operation):
    """``Delete[count, pos]``: delete ``count`` characters from ``pos``."""

    count: int
    pos: int

    def __post_init__(self) -> None:
        if self.count < 0:
            raise OperationError(f"delete count must be >= 0, got {self.count}")
        if self.pos < 0:
            raise OperationError(f"delete position must be >= 0, got {self.pos}")

    def apply(self, document: str) -> str:
        if self.pos + self.count > len(document):
            raise OperationError(
                f"delete range [{self.pos}, {self.pos + self.count}) beyond "
                f"document length {len(document)}"
            )
        return document[: self.pos] + document[self.pos + self.count :]

    def is_identity(self) -> bool:
        return self.count == 0

    @property
    def end(self) -> int:
        """Index one past the last deleted character (before execution)."""
        return self.pos + self.count

    def __repr__(self) -> str:
        return f"Delete[{self.count}, {self.pos}]"


@dataclass(frozen=True)
class Identity(Operation):
    """The no-op.

    Transformation can annihilate an operation entirely (e.g. a delete
    fully contained in a concurrent delete); the result is ``Identity``.
    """

    def apply(self, document: str) -> str:
        return document

    def is_identity(self) -> bool:
        return True

    def primitive_count(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "Identity[]"


@dataclass(frozen=True)
class OperationGroup(Operation):
    """An ordered group of operations applied left-to-right.

    Produced when transformation splits one primitive operation into
    several (a delete straddling a concurrent insert).  Members are
    stored with positions already adjusted so that sequential
    application realises the combined intention.
    """

    members: tuple[Operation, ...] = field(default_factory=tuple)

    def apply(self, document: str) -> str:
        for member in self.members:
            document = member.apply(document)
        return document

    def is_identity(self) -> bool:
        return all(member.is_identity() for member in self.members)

    def primitive_count(self) -> int:
        return sum(member.primitive_count() for member in self.members)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.members)

    def __repr__(self) -> str:
        inner = ", ".join(repr(member) for member in self.members)
        return f"Group[{inner}]"


PrimitiveOp = Union[Insert, Delete, Identity]


def apply_operation(document: str, op: Operation) -> str:
    """Execute ``op`` (possibly a group) on ``document``."""
    return op.apply(document)


def apply_clamped(document: str, op: Operation) -> str:
    """Best-effort execution: clamp out-of-range positions.

    This is how a *naive* replica behaves when executing remote
    operations without transformation (the paper's Fig. 2 failure mode):
    positions computed against a different document state are forced
    into range rather than rejected.  Used only by the
    transformation-off ablation; the real system never needs it.
    """
    if isinstance(op, OperationGroup):
        for member in op.members:
            document = apply_clamped(document, member)
        return document
    if isinstance(op, Insert):
        return Insert(op.text, min(op.pos, len(document))).apply(document)
    if isinstance(op, Delete):
        pos = min(op.pos, len(document))
        count = min(op.count, len(document) - pos)
        return Delete(count, pos).apply(document)
    return op.apply(document)


def clamp_to(document: str, op: Operation) -> Operation:
    """The operation with positions forced into range for ``document``.

    Failover replay needs this: a pending operation stashed before a
    notifier crash was defined against the client's pre-crash document,
    but is regenerated against the successor's baseline, which may be
    shorter (operations the dead notifier acknowledged but never relayed
    are rolled back).  The clamped form keeps as much of the intention
    as fits; anything out of range degrades toward an identity rather
    than raising.  Non-positional operation types pass through.
    """
    if isinstance(op, OperationGroup):
        members: list[Operation] = []
        state = document
        for member in op.members:
            clamped = clamp_to(state, member)
            members.append(clamped)
            state = clamped.apply(state)
        return OperationGroup(tuple(members))
    if isinstance(op, Insert):
        return Insert(op.text, min(op.pos, len(document)))
    if isinstance(op, Delete):
        pos = min(op.pos, len(document))
        return Delete(min(op.count, len(document) - pos), pos)
    return op


def apply_sequence(document: str, ops: Sequence[Operation]) -> str:
    """Execute a sequence of operations left-to-right."""
    for op in ops:
        document = op.apply(document)
    return document


def flatten(op: Operation) -> list[Operation]:
    """Flatten nested groups into a list of primitive operations."""
    if isinstance(op, OperationGroup):
        out: list[Operation] = []
        for member in op.members:
            out.extend(flatten(member))
        return out
    if isinstance(op, Identity):
        return []
    return [op]


def simplify(op: Operation) -> Operation:
    """Collapse groups and drop identity members.

    A group of zero effective members becomes :class:`Identity`; a group
    of one becomes that member.
    """
    primitives = [p for p in flatten(op) if not p.is_identity()]
    if not primitives:
        return Identity()
    if len(primitives) == 1:
        return primitives[0]
    return OperationGroup(tuple(primitives))
