"""Rich-text OT: collaborative editing with character formatting.

An extension in the spirit of the paper's Section 6: the compressed
vector clock machinery is type-agnostic, so here is a richer replicated
document type -- text where every character carries a set of formatting
attributes (``"bold"``, ``"italic"``, ...) -- plugged into the same star
editor.

Document model
--------------
``RichText`` is an immutable sequence of ``(char, frozenset[attr])``
pairs.

Operation model
---------------
A :class:`RichOperation` is a run of components over the whole document:

* ``retain(n)`` -- keep ``n`` characters unchanged;
* ``retain(n, add=..., remove=...)`` -- keep ``n`` characters but apply
  formatting changes;
* ``insert(text, attrs)`` -- insert pre-formatted text;
* ``delete(n)`` -- remove ``n`` characters.

Transformation
--------------
``transform`` satisfies TP1.  Position arithmetic follows the plain text
type; the new ingredient is **concurrent formatting of the same span**:
both sides' non-conflicting changes apply, and where they conflict (one
adds an attribute the other removes) the higher-priority side's decision
wins -- implemented by stripping the conflicting actions from the
lower-priority operation, which makes both execution orders agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Union

AttrSet = frozenset
Char = tuple[str, AttrSet]
RichText = tuple[Char, ...]


class RichTextError(ValueError):
    """Raised on malformed rich operations or length mismatches."""


def plain(text: str, *attrs: str) -> RichText:
    """Build a :data:`RichText` with uniform attributes."""
    attr_set = frozenset(attrs)
    return tuple((ch, attr_set) for ch in text)


def to_string(doc: RichText) -> str:
    """The unformatted character content."""
    return "".join(ch for ch, _ in doc)


def attrs_at(doc: RichText, index: int) -> AttrSet:
    """The attribute set of the character at ``index``."""
    return doc[index][1]


@dataclass(frozen=True)
class Retain:
    """Keep ``count`` characters, optionally changing formatting."""

    count: int
    add: AttrSet = field(default_factory=frozenset)
    remove: AttrSet = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise RichTextError(f"retain count must be positive, got {self.count}")
        if self.add & self.remove:
            raise RichTextError(
                f"attributes both added and removed: {sorted(self.add & self.remove)}"
            )

    @property
    def touched(self) -> AttrSet:
        return self.add | self.remove

    def is_plain(self) -> bool:
        return not self.add and not self.remove

    def strip(self, attrs: AttrSet) -> "Retain":
        """Drop actions on ``attrs`` (conflict resolution)."""
        return Retain(self.count, self.add - attrs, self.remove - attrs)

    def take(self, n: int) -> tuple["Retain", "Retain | None"]:
        if n >= self.count:
            return self, None
        return (
            Retain(n, self.add, self.remove),
            Retain(self.count - n, self.add, self.remove),
        )


@dataclass(frozen=True)
class InsertRich:
    """Insert ``text`` with uniform ``attrs``."""

    text: str
    attrs: AttrSet = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if not self.text:
            raise RichTextError("insert text must be non-empty")


@dataclass(frozen=True)
class DeleteRich:
    """Delete the next ``count`` characters."""

    count: int

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise RichTextError(f"delete count must be positive, got {self.count}")

    def take(self, n: int) -> tuple["DeleteRich", "DeleteRich | None"]:
        if n >= self.count:
            return self, None
        return DeleteRich(n), DeleteRich(self.count - n)


Component = Union[Retain, InsertRich, DeleteRich]


@dataclass
class RichOperation:
    """A whole-document rich-text edit."""

    components: list[Component] = field(default_factory=list)

    # -- builders -------------------------------------------------------------

    def retain(self, n: int, add: Iterable[str] = (), remove: Iterable[str] = ()) -> "RichOperation":
        if n == 0:
            return self
        self.components.append(Retain(n, frozenset(add), frozenset(remove)))
        return self

    def insert(self, text: str, attrs: Iterable[str] = ()) -> "RichOperation":
        if text == "":
            return self
        self.components.append(InsertRich(text, frozenset(attrs)))
        return self

    def delete(self, n: int) -> "RichOperation":
        if n == 0:
            return self
        self.components.append(DeleteRich(n))
        return self

    # -- inspection -----------------------------------------------------------

    @property
    def base_length(self) -> int:
        return sum(
            c.count for c in self.components if isinstance(c, (Retain, DeleteRich))
        )

    @property
    def target_length(self) -> int:
        out = 0
        for c in self.components:
            if isinstance(c, Retain):
                out += c.count
            elif isinstance(c, InsertRich):
                out += len(c.text)
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RichOperation):
            return NotImplemented
        return self.components == other.components

    def __repr__(self) -> str:
        parts = []
        for c in self.components:
            if isinstance(c, Retain):
                if c.is_plain():
                    parts.append(f"ret({c.count})")
                else:
                    parts.append(
                        f"fmt({c.count},+{sorted(c.add)},-{sorted(c.remove)})"
                    )
            elif isinstance(c, InsertRich):
                parts.append(f"ins({c.text!r},{sorted(c.attrs)})")
            else:
                parts.append(f"del({c.count})")
        return f"RichOperation[{', '.join(parts)}]"

    # -- semantics --------------------------------------------------------------

    def apply(self, doc: RichText) -> RichText:
        if len(doc) != self.base_length:
            raise RichTextError(
                f"operation base length {self.base_length} != document "
                f"length {len(doc)}"
            )
        out: list[Char] = []
        index = 0
        for c in self.components:
            if isinstance(c, Retain):
                span = doc[index : index + c.count]
                if c.is_plain():
                    out.extend(span)
                else:
                    out.extend((ch, (attrs | c.add) - c.remove) for ch, attrs in span)
                index += c.count
            elif isinstance(c, InsertRich):
                out.extend((ch, c.attrs) for ch in c.text)
            else:
                index += c.count
        return tuple(out)

    def invert(self, doc: RichText) -> "RichOperation":
        """The inverse relative to pre-state ``doc`` (for undo).

        Formatting inverses are computed per character (a uniform
        ``add``/``remove`` may hit characters with different prior
        attributes, so the inverse splits the span into runs); deletions
        invert to re-inserting the styled characters.
        """
        if len(doc) != self.base_length:
            raise RichTextError(
                f"operation base length {self.base_length} != document "
                f"length {len(doc)}"
            )
        inverse = RichOperation()
        index = 0
        for c in self.components:
            if isinstance(c, InsertRich):
                inverse.delete(len(c.text))
            elif isinstance(c, DeleteRich):
                # re-insert the styled characters, one run per attr set
                for ch, attrs in doc[index : index + c.count]:
                    inverse.insert(ch, attrs)
                index += c.count
            elif c.is_plain():
                inverse.retain(c.count)
                index += c.count
            else:
                # restore each character's prior attribute state
                for ch, attrs in doc[index : index + c.count]:
                    del ch
                    inverse.retain(
                        1,
                        add=c.remove & attrs,  # was present, got removed
                        remove=c.add - attrs,  # was absent, got added
                    )
                index += c.count
        return inverse

    # -- transformation -----------------------------------------------------------

    def transform(
        self, other: "RichOperation", self_priority: bool = True
    ) -> tuple["RichOperation", "RichOperation"]:
        """Symmetric TP1 transform with formatting-conflict resolution."""
        if self.base_length != other.base_length:
            raise RichTextError(
                f"cannot transform: base lengths differ "
                f"({self.base_length} vs {other.base_length})"
            )
        a_prime = RichOperation()
        b_prime = RichOperation()
        it_a = _Cursor(self.components)
        it_b = _Cursor(other.components)
        while True:
            a, b = it_a.peek(), it_b.peek()
            if a is None and b is None:
                break
            if isinstance(a, InsertRich) and (self_priority or not isinstance(b, InsertRich)):
                a_prime.components.append(a)
                b_prime.retain(len(a.text))
                it_a.advance_all()
                continue
            if isinstance(b, InsertRich):
                a_prime.retain(len(b.text))
                b_prime.components.append(b)
                it_b.advance_all()
                continue
            if isinstance(a, InsertRich):
                a_prime.components.append(a)
                b_prime.retain(len(a.text))
                it_a.advance_all()
                continue
            if a is None or b is None:
                raise RichTextError("transform ran off the end: length mismatch")
            step = min(a.count, b.count)
            a_head, a_rest = a.take(step)
            b_head, b_rest = b.take(step)
            if isinstance(a_head, DeleteRich) and isinstance(b_head, DeleteRich):
                pass  # both deleted the span: vanishes from both
            elif isinstance(a_head, DeleteRich):
                a_prime.components.append(a_head)
            elif isinstance(b_head, DeleteRich):
                b_prime.components.append(b_head)
            else:
                # both retain: merge formatting with priority on conflicts
                conflicts = a_head.touched & b_head.touched
                if conflicts:
                    if self_priority:
                        b_head = b_head.strip(conflicts)
                    else:
                        a_head = a_head.strip(conflicts)
                _append_retain(a_prime, a_head)
                _append_retain(b_prime, b_head)
            it_a.consume(step, a_rest)
            it_b.consume(step, b_rest)
        return a_prime, b_prime


def _append_retain(op: RichOperation, retain: Retain) -> None:
    op.retain(retain.count, retain.add, retain.remove)


class _Cursor:
    """Cursor over components supporting partial consumption."""

    __slots__ = ("_components", "_index", "_pending")

    def __init__(self, components: list[Component]) -> None:
        self._components = components
        self._index = 0
        self._pending: Component | None = None

    def peek(self) -> Component | None:
        if self._pending is not None:
            return self._pending
        if self._index >= len(self._components):
            return None
        return self._components[self._index]

    def advance_all(self) -> None:
        if self._pending is not None:
            self._pending = None
        else:
            self._index += 1

    def consume(self, n: int, rest: Component | None) -> None:
        del n
        if self._pending is None:
            self._index += 1
        self._pending = rest


class RichTextType:
    """OT-type adapter plugging rich text into the generic editors."""

    name = "rich-text"

    def initial(self) -> RichText:
        return ()

    def apply(self, state: RichText, op: RichOperation) -> RichText:
        return op.apply(state)

    def transform(
        self, a: RichOperation, b: RichOperation, a_priority: bool
    ) -> tuple[RichOperation, RichOperation]:
        return a.transform(b, self_priority=a_priority)

    def invert(self, state: RichText, op: RichOperation) -> RichOperation:
        """The inverse of ``op`` relative to its pre-state (for undo)."""
        return op.invert(state)

    def serialized_size(self, op: RichOperation) -> int:
        size = 1
        for c in op.components:
            if isinstance(c, Retain):
                size += 4 + sum(len(a) + 1 for a in c.add | c.remove)
            elif isinstance(c, InsertRich):
                size += len(c.text.encode("utf-8")) + 1 + sum(len(a) + 1 for a in c.attrs)
            else:
                size += 4
        return size
