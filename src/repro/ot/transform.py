"""Inclusion and exclusion transformation for positional operations.

Operational transformation (paper Section 2.3) reformulates the
positional parameters of an operation ``Oa`` according to the effect of a
*concurrent* operation ``Ob`` so that executing the transformed operation
``Oa'`` on the document state *after* ``Ob`` realises ``Oa``'s original
intention.

Two directions are provided, following Sun et al. (TOCHI 1998):

* :func:`inclusion_transform` -- ``IT(Oa, Ob)``: include ``Ob``'s effect.
  Precondition: ``Oa`` and ``Ob`` are defined on the same document state.
* :func:`exclusion_transform` -- ``ET(Oa, Ob)``: exclude ``Ob``'s effect.
  Precondition: ``Oa`` is defined on the state immediately after ``Ob``.

:func:`transform_pair` performs the symmetric transformation
``(Oa, Ob) -> (Oa', Ob')`` with the convergence guarantee (TP1)::

    apply(apply(S, Oa), Ob') == apply(apply(S, Ob), Oa')

Tie-breaking
------------
When two concurrent inserts target the same position the result order is
ambiguous; like the REDUCE system we break the tie by site priority.  All
functions accept ``a_priority`` -- ``True`` when ``Oa``'s originating
site has higher priority (lower site identifier), in which case ``Oa``'s
text ends up *before* ``Ob``'s.

Splitting
---------
``IT(Delete, Insert)`` with the insertion strictly inside the deleted
region splits the deletion into an :class:`~repro.ot.operations.OperationGroup`
of two deletions whose members are pre-adjusted for sequential
application, preserving the deletion intention without touching the
concurrently inserted text.
"""

from __future__ import annotations

from repro.obs.profiler import profiled
from repro.ot.operations import (
    Delete,
    Identity,
    Insert,
    Operation,
    OperationGroup,
    simplify,
)


class TransformError(TypeError):
    """Raised when an operation pair has no transformation rule."""


# ---------------------------------------------------------------------------
# Inclusion transformation (IT)
# ---------------------------------------------------------------------------


def _it_insert_insert(a: Insert, b: Insert, a_priority: bool) -> Operation:
    if a.pos < b.pos or (a.pos == b.pos and a_priority):
        return a
    return Insert(a.text, a.pos + len(b.text))


def _it_insert_delete(a: Insert, b: Delete) -> Operation:
    if a.pos <= b.pos:
        return a
    if a.pos >= b.end:
        return Insert(a.text, a.pos - b.count)
    # Insertion point was deleted by b; relocate to the deletion site.
    return Insert(a.text, b.pos)


def _it_delete_insert(a: Delete, b: Insert) -> Operation:
    if b.pos >= a.end:
        return a
    if b.pos <= a.pos:
        return Delete(a.count, a.pos + len(b.text))
    # b's text lands strictly inside a's range: split around it.  The
    # second member's position accounts for the first member having
    # already removed (b.pos - a.pos) characters.
    left = Delete(b.pos - a.pos, a.pos)
    right = Delete(a.end - b.pos, a.pos + len(b.text))
    return OperationGroup((left, right))


def _it_delete_delete(a: Delete, b: Delete) -> Operation:
    if a.end <= b.pos:
        return a
    if a.pos >= b.end:
        return Delete(a.count, a.pos - b.count)
    # Overlap: the intersection has already been deleted by b.
    left = max(0, b.pos - a.pos)
    right = max(0, a.end - b.end)
    if left + right == 0:
        return Identity()
    return Delete(left + right, min(a.pos, b.pos))


@profiled("ot.it")
def inclusion_transform(a: Operation, b: Operation, a_priority: bool = True) -> Operation:
    """``IT(a, b)``: transform ``a`` to include the effect of ``b``.

    ``a`` and ``b`` must be defined on the same document state.  The
    result is defined on the state produced by executing ``b`` and, when
    executed there, realises ``a``'s original intention.
    """
    if isinstance(b, Identity):
        return a
    if isinstance(a, Identity):
        return a
    if isinstance(a, OperationGroup) or isinstance(b, OperationGroup):
        a2, _ = transform_pair(a, b, a_priority)
        return a2
    if isinstance(a, Insert) and isinstance(b, Insert):
        return _it_insert_insert(a, b, a_priority)
    if isinstance(a, Insert) and isinstance(b, Delete):
        return _it_insert_delete(a, b)
    if isinstance(a, Delete) and isinstance(b, Insert):
        return _it_delete_insert(a, b)
    if isinstance(a, Delete) and isinstance(b, Delete):
        return _it_delete_delete(a, b)
    raise TransformError(f"no IT rule for {type(a).__name__} against {type(b).__name__}")


# ---------------------------------------------------------------------------
# Symmetric transformation with TP1
# ---------------------------------------------------------------------------


@profiled("ot.transform_pair")
def transform_pair(
    a: Operation, b: Operation, a_priority: bool = True
) -> tuple[Operation, Operation]:
    """Symmetric transformation ``(a, b) -> (a', b')`` satisfying TP1.

    Both inputs must be defined on the same document state ``S``.  The
    outputs satisfy ``apply(apply(S, a), b') == apply(apply(S, b), a')``.
    Groups are folded member by member, threading the opposing operation
    through each step so preconditions stay aligned.
    """
    if isinstance(a, OperationGroup):
        b_cur: Operation = b
        members: list[Operation] = []
        for member in a.members:
            m2, b_cur = transform_pair(member, b_cur, a_priority)
            members.append(m2)
        return simplify(OperationGroup(tuple(members))), b_cur
    if isinstance(b, OperationGroup):
        b2, a2 = transform_pair(b, a, not a_priority)
        return a2, b2
    a2 = inclusion_transform(a, b, a_priority)
    b2 = inclusion_transform(b, a, not a_priority)
    return simplify(a2), simplify(b2)


# ---------------------------------------------------------------------------
# Exclusion transformation (ET)
# ---------------------------------------------------------------------------


def _et_insert_insert(a: Insert, b: Insert) -> Operation:
    if a.pos <= b.pos:
        return a
    if a.pos >= b.end:
        return Insert(a.text, a.pos - len(b.text))
    # a targets the interior of b's freshly inserted text; that position
    # has no pre-b equivalent.  Relocate to b's insertion point (lossy).
    return Insert(a.text, b.pos)


def _et_insert_delete(a: Insert, b: Delete) -> Operation:
    if a.pos <= b.pos:
        return a
    return Insert(a.text, a.pos + b.count)


def _et_delete_insert(a: Delete, b: Insert) -> Operation:
    if a.end <= b.pos:
        return a
    if a.pos >= b.end:
        return Delete(a.count, a.pos - len(b.text))
    # a overlaps b's inserted text.  The portion inside b's text has no
    # pre-b equivalent; exclude it (lossy) and keep the remainder.
    left = max(0, min(a.end, b.pos) - a.pos)
    right = max(0, a.end - b.end)
    if left + right == 0:
        return Identity()
    return Delete(left + right, a.pos if left > 0 else b.pos)


def _et_delete_delete(a: Delete, b: Delete) -> Operation:
    if a.end <= b.pos:
        return a
    if a.pos >= b.pos:
        return Delete(a.count, a.pos + b.count)
    # a straddles b's (restored) deletion point: split around it.
    left = Delete(b.pos - a.pos, a.pos)
    right = Delete(a.end - b.pos, a.pos + b.count)
    return OperationGroup((left, right))


@profiled("ot.et")
def exclusion_transform(a: Operation, b: Operation) -> Operation:
    """``ET(a, b)``: transform ``a`` to exclude the effect of ``b``.

    Precondition: ``a`` is defined on the state immediately *after*
    ``b``.  The result is defined on the state before ``b``.  On
    non-overlapping ranges ``ET(IT(a, b), b) == a`` holds exactly; where
    ``a`` addresses content created by ``b`` the exclusion is documented
    as lossy (matching the "lost information" discussion of Sun et al.).
    """
    if isinstance(b, Identity):
        return a
    if isinstance(a, Identity):
        return a
    if isinstance(a, OperationGroup):
        # Members are sequential: member k is defined after member k-1.
        # Excluding b from the group excludes it from the first member,
        # then from each subsequent member b must first be viewed through
        # the preceding members' inclusion.
        members: list[Operation] = []
        b_cur: Operation = b
        for member in a.members:
            members.append(exclusion_transform(member, b_cur))
            b_cur = inclusion_transform(b_cur, member)
        return simplify(OperationGroup(tuple(members)))
    if isinstance(b, OperationGroup):
        # Exclude the group's members right-to-left.
        out: Operation = a
        for member in reversed(b.members):
            out = exclusion_transform(out, member)
        return simplify(out)
    if isinstance(a, Insert) and isinstance(b, Insert):
        return _et_insert_insert(a, b)
    if isinstance(a, Insert) and isinstance(b, Delete):
        return _et_insert_delete(a, b)
    if isinstance(a, Delete) and isinstance(b, Insert):
        return _et_delete_insert(a, b)
    if isinstance(a, Delete) and isinstance(b, Delete):
        return _et_delete_delete(a, b)
    raise TransformError(f"no ET rule for {type(a).__name__} against {type(b).__name__}")
