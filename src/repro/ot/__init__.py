"""Operational transformation substrate.

This subpackage implements the operational-transformation machinery that
the compressed-vector-clock scheme of Sun & Cai (IPPS 2002) depends on:

* :mod:`repro.ot.operations` -- the paper's positional string operations
  ``Insert[text, pos]`` and ``Delete[count, pos]`` (Section 2.2 of the
  paper), together with application semantics and an *intention* record.
* :mod:`repro.ot.transform` -- inclusion (IT) and exclusion (ET)
  transformation functions for the positional operations, in the style of
  Sun et al., TOCHI 1998.
* :mod:`repro.ot.component` -- a component-based text-operation type
  (retain / insert / delete runs) with ``compose`` and a ``transform``
  that satisfies transformation property TP1.  The group editors use this
  type internally because TP1 is exactly the property needed for
  convergence in a star topology.
* :mod:`repro.ot.types` -- a small registry of OT *types* (text, list,
  counter, last-writer-wins register) demonstrating the paper's Section 6
  claim that the compression scheme generalises to any replicated data
  object with a suitable transformation function.
"""

from repro.ot.operations import (
    Delete,
    Identity,
    Insert,
    Operation,
    OperationGroup,
    apply_operation,
)
from repro.ot.transform import (
    exclusion_transform,
    inclusion_transform,
    transform_pair,
)
from repro.ot.component import TextOperation
from repro.ot.types import (
    CounterType,
    ListType,
    LWWRegisterType,
    OTType,
    PositionalTextType,
    TextComponentType,
    get_type,
    register_type,
)

__all__ = [
    "Insert",
    "Delete",
    "Identity",
    "Operation",
    "OperationGroup",
    "apply_operation",
    "inclusion_transform",
    "exclusion_transform",
    "transform_pair",
    "TextOperation",
    "OTType",
    "TextComponentType",
    "PositionalTextType",
    "ListType",
    "CounterType",
    "LWWRegisterType",
    "get_type",
    "register_type",
]
