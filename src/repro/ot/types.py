"""Generic OT types: the pluggable transformation contract.

The paper's Section 6 argues the compression scheme applies to *any*
replicated data object for which an operational-transformation function
exists.  The group-editor engine in :mod:`repro.editor` is therefore
written against the :class:`OTType` contract below rather than strings
specifically, and this module registers four concrete types:

* :class:`TextComponentType` -- collaborative text (the paper's domain),
  backed by :class:`repro.ot.component.TextOperation`;
* :class:`PositionalTextType` -- the same document model driven by the
  paper's positional ``Insert``/``Delete`` operations and the IT rules of
  :mod:`repro.ot.transform`;
* :class:`ListType` -- replicated ordered lists (insert/delete of
  elements), the natural generalisation to replicated databases of rows;
* :class:`CounterType` -- commutative increments (transformation is the
  identity), the degenerate case showing the scheme's lower bound;
* :class:`LWWRegisterType` -- a last-writer-wins register where the
  transform deterministically discards the lower-priority concurrent
  write, modelling replicated configuration entries.

Every type must guarantee **TP1**::

    apply(apply(S, a), transform(a, b)[1]) == apply(apply(S, b), transform(a, b)[0])

which is the only property star-topology convergence requires (the
notifier serialises its stream, so TP2 never arises).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generic, Protocol, TypeVar, runtime_checkable

from repro.ot.component import TextOperation
from repro.ot.operations import Operation, apply_operation
from repro.ot.transform import transform_pair

State = TypeVar("State")
Op = TypeVar("Op")


@runtime_checkable
class OTType(Protocol[State, Op]):
    """The contract an OT type must satisfy to plug into the editors."""

    name: str

    def initial(self) -> State:
        """The initial replicated state."""
        ...

    def apply(self, state: State, op: Op) -> State:
        """Execute ``op`` on ``state`` and return the new state."""
        ...

    def transform(self, a: Op, b: Op, a_priority: bool) -> tuple[Op, Op]:
        """Symmetric transform satisfying TP1.

        ``a_priority`` breaks ties deterministically; callers pass
        ``True`` when ``a``'s originating site has the lower identifier.
        """
        ...

    def serialized_size(self, op: Op) -> int:
        """Approximate wire size of ``op`` in bytes (for metrics)."""
        ...


class TextComponentType:
    """Collaborative plain text via component operations."""

    name = "text-component"

    def initial(self) -> str:
        return ""

    def apply(self, state: str, op: TextOperation) -> str:
        return op.apply(state)

    def transform(
        self, a: TextOperation, b: TextOperation, a_priority: bool
    ) -> tuple[TextOperation, TextOperation]:
        return a.transform(b, self_priority=a_priority)

    def invert(self, state: str, op: TextOperation) -> TextOperation:
        """The inverse of ``op`` relative to its pre-state (for undo)."""
        return op.invert(state)

    def serialized_size(self, op: TextOperation) -> int:
        size = 0
        for c in op.components:
            size += len(c.encode("utf-8")) + 1 if isinstance(c, str) else 4
        return size


class PositionalTextType:
    """Collaborative text via the paper's positional operations."""

    name = "text-positional"

    def initial(self) -> str:
        return ""

    def apply(self, state: str, op: Operation) -> str:
        return apply_operation(state, op)

    def transform(
        self, a: Operation, b: Operation, a_priority: bool
    ) -> tuple[Operation, Operation]:
        return transform_pair(a, b, a_priority)

    def invert(self, state: str, op: Operation) -> Operation:
        """The inverse of ``op`` relative to pre-state ``state`` (undo).

        An ``Insert`` inverts to a ``Delete``; a ``Delete`` inverts to
        re-inserting the text captured from the pre-state; a group
        inverts to the reversed member inverses against the evolving
        state.
        """
        from repro.ot.operations import (
            Delete,
            Identity,
            Insert,
            OperationGroup,
            simplify,
        )

        if isinstance(op, Insert):
            return Delete(len(op.text), op.pos)
        if isinstance(op, Delete):
            return Insert(state[op.pos : op.end], op.pos)
        if isinstance(op, Identity):
            return Identity()
        if isinstance(op, OperationGroup):
            inverses = []
            current = state
            for member in op.members:
                inverses.append(self.invert(current, member))
                current = member.apply(current)
            return simplify(OperationGroup(tuple(reversed(inverses))))
        raise TypeError(f"cannot invert operation type {type(op).__name__}")

    def serialized_size(self, op: Operation) -> int:
        from repro.ot.operations import Delete, Insert, flatten

        size = 0
        for primitive in flatten(op):
            if isinstance(primitive, Insert):
                size += 4 + len(primitive.text.encode("utf-8"))
            elif isinstance(primitive, Delete):
                size += 8
        return max(size, 1)


@dataclass(frozen=True)
class ListOp:
    """Insert or delete a single element of a replicated list.

    ``kind`` is ``"ins"`` or ``"del"``; ``value`` is ignored for deletes.
    """

    kind: str
    index: int
    value: Any = None

    def __post_init__(self) -> None:
        if self.kind not in ("ins", "del", "nop"):
            raise ValueError(f"unknown list op kind {self.kind!r}")
        if self.index < 0:
            raise ValueError("list index must be >= 0")


class ListType:
    """Replicated ordered list with element-level insert/delete."""

    name = "list"

    def initial(self) -> tuple:
        return ()

    def apply(self, state: tuple, op: ListOp) -> tuple:
        if op.kind == "nop":
            return state
        if op.kind == "ins":
            if op.index > len(state):
                raise ValueError(f"insert index {op.index} beyond list length {len(state)}")
            return state[: op.index] + (op.value,) + state[op.index :]
        if op.index >= len(state):
            raise ValueError(f"delete index {op.index} beyond list length {len(state)}")
        return state[: op.index] + state[op.index + 1 :]

    def transform(self, a: ListOp, b: ListOp, a_priority: bool) -> tuple[ListOp, ListOp]:
        return (
            self._transform_one(a, b, a_priority),
            self._transform_one(b, a, not a_priority),
        )

    @staticmethod
    def _transform_one(a: ListOp, b: ListOp, a_priority: bool) -> ListOp:
        if a.kind == "nop" or b.kind == "nop":
            return a
        if b.kind == "ins":
            if a.index > b.index or (a.index == b.index and (a.kind == "del" or not a_priority)):
                return ListOp(a.kind, a.index + 1, a.value)
            return a
        # b deletes one element
        if a.index > b.index:
            return ListOp(a.kind, a.index - 1, a.value)
        if a.index == b.index and a.kind == "del":
            return ListOp("nop", 0)
        return a

    def serialized_size(self, op: ListOp) -> int:
        import pickle

        return 5 + (len(pickle.dumps(op.value)) if op.kind == "ins" else 0)


@dataclass(frozen=True)
class CounterOp:
    """Add ``delta`` to a replicated integer counter."""

    delta: int


class CounterType:
    """Commutative counter: transformation is the identity.

    Included as the degenerate case -- when operations commute, OT has
    nothing to do, but the timestamping/concurrency machinery of the
    compressed scheme is still exercised end to end.
    """

    name = "counter"

    def initial(self) -> int:
        return 0

    def apply(self, state: int, op: CounterOp) -> int:
        return state + op.delta

    def transform(self, a: CounterOp, b: CounterOp, a_priority: bool) -> tuple[CounterOp, CounterOp]:
        del a_priority
        return a, b

    def serialized_size(self, op: CounterOp) -> int:
        del op
        return 8


@dataclass(frozen=True)
class RegisterOp:
    """Overwrite a replicated register with ``value``."""

    value: Any


class LWWRegisterType:
    """Last-writer-wins register.

    Concurrent writes conflict; the transform keeps the higher-priority
    write and turns the other into a no-op overwrite of the same value,
    so both execution orders converge to the winner's value.
    """

    name = "lww-register"

    def initial(self) -> Any:
        return None

    def apply(self, state: Any, op: RegisterOp) -> Any:
        del state
        return op.value

    def transform(self, a: RegisterOp, b: RegisterOp, a_priority: bool) -> tuple[RegisterOp, RegisterOp]:
        winner = a if a_priority else b
        # After transformation both residual ops write the winning value:
        # executing either order yields the winner.
        return RegisterOp(winner.value), RegisterOp(winner.value)

    def serialized_size(self, op: RegisterOp) -> int:
        import pickle

        return len(pickle.dumps(op.value))


_REGISTRY: dict[str, Any] = {}


def register_type(ot_type: Any) -> None:
    """Register an OT type instance under its ``name``."""
    if not hasattr(ot_type, "name"):
        raise TypeError("OT types must expose a .name attribute")
    _REGISTRY[ot_type.name] = ot_type


def get_type(name: str) -> Any:
    """Look up a registered OT type by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown OT type {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def _register_builtins() -> None:
    from repro.ot.rich import RichTextType

    for t in (
        TextComponentType(),
        PositionalTextType(),
        ListType(),
        CounterType(),
        LWWRegisterType(),
        RichTextType(),
    ):
        register_type(t)


_register_builtins()
