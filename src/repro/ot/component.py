"""Component-based text operations with compose and TP1 transform.

A :class:`TextOperation` describes an edit as a run of *components*
spanning the whole document:

* ``retain(n)`` -- skip over ``n`` characters unchanged (stored as a
  positive ``int``),
* ``insert(s)`` -- insert string ``s`` (stored as a ``str``),
* ``delete(n)`` -- delete the next ``n`` characters (stored as a
  negative ``int``).

This representation (familiar from production OT systems) has two
properties the positional model lacks:

* ``transform`` is *total* and satisfies **TP1** for every operation
  pair -- exactly the convergence property a star-topology editor needs
  (the notifier imposes a single total order on its stream, so TP2 is
  never exercised);
* ``compose`` lets a site fold a burst of local edits into a single
  message, which the benchmarks use for the batching ablation.

Conversions to and from the paper's positional operations are provided
so the two models interoperate: the paper-faithful scenario replays use
positional operations, the generic editor engine uses this type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Union

from repro.ot.operations import (
    Delete,
    Identity,
    Insert,
    Operation,
    OperationGroup,
    flatten,
)

Component = Union[int, str]  # +int retain, -int delete, str insert


class ComponentError(ValueError):
    """Raised on malformed component operations or length mismatches."""


@dataclass
class TextOperation:
    """A whole-document edit as a normalised run of components.

    Invariants maintained by the mutating builder methods:

    * adjacent components of the same kind are merged;
    * zero-length components are dropped;
    * an insert adjacent to a delete is normalised to insert-first
      (canonical order), which makes equality structural.
    """

    components: list[Component] = field(default_factory=list)
    base_length: int = 0
    target_length: int = 0

    # -- builders -----------------------------------------------------------

    def retain(self, n: int) -> "TextOperation":
        """Append a retain of ``n`` characters (no-op when ``n == 0``)."""
        if n < 0:
            raise ComponentError(f"retain length must be >= 0, got {n}")
        if n == 0:
            return self
        self.base_length += n
        self.target_length += n
        if self.components and isinstance(self.components[-1], int) and self.components[-1] > 0:
            self.components[-1] += n
        else:
            self.components.append(n)
        return self

    def insert(self, s: str) -> "TextOperation":
        """Append an insertion of string ``s`` (no-op when empty)."""
        if s == "":
            return self
        self.target_length += len(s)
        comps = self.components
        if comps and isinstance(comps[-1], str):
            comps[-1] += s
        elif comps and isinstance(comps[-1], int) and comps[-1] < 0:
            # Canonical order: insert before an adjacent delete.  The
            # effect is identical; normalising makes equality structural.
            if len(comps) >= 2 and isinstance(comps[-2], str):
                comps[-2] += s
            else:
                comps.insert(len(comps) - 1, s)
        else:
            comps.append(s)
        return self

    def delete(self, n: int) -> "TextOperation":
        """Append a deletion of ``n`` characters (no-op when ``n == 0``)."""
        if n < 0:
            raise ComponentError(f"delete length must be >= 0, got {n}")
        if n == 0:
            return self
        self.base_length += n
        comps = self.components
        if comps and isinstance(comps[-1], int) and comps[-1] < 0:
            comps[-1] -= n
        else:
            comps.append(-n)
        return self

    # -- inspection ---------------------------------------------------------

    def is_noop(self) -> bool:
        """True when applying the operation returns the input unchanged."""
        return all(isinstance(c, int) and c > 0 for c in self.components)

    def inserted_chars(self) -> int:
        return sum(len(c) for c in self.components if isinstance(c, str))

    def deleted_chars(self) -> int:
        return sum(-c for c in self.components if isinstance(c, int) and c < 0)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TextOperation):
            return NotImplemented
        return self.components == other.components

    def __repr__(self) -> str:
        parts = []
        for c in self.components:
            if isinstance(c, str):
                parts.append(f"ins({c!r})")
            elif c > 0:
                parts.append(f"ret({c})")
            else:
                parts.append(f"del({-c})")
        return f"TextOperation[{', '.join(parts)}]"

    # -- semantics ----------------------------------------------------------

    def apply(self, document: str) -> str:
        """Execute the operation on ``document``."""
        if len(document) != self.base_length:
            raise ComponentError(
                f"operation base length {self.base_length} does not match "
                f"document length {len(document)}"
            )
        out: list[str] = []
        index = 0
        for c in self.components:
            if isinstance(c, str):
                out.append(c)
            elif c > 0:
                out.append(document[index : index + c])
                index += c
            else:
                index += -c
        return "".join(out)

    def invert(self, document: str) -> "TextOperation":
        """Return the inverse operation relative to the pre-state ``document``."""
        if len(document) != self.base_length:
            raise ComponentError(
                f"operation base length {self.base_length} does not match "
                f"document length {len(document)}"
            )
        inverse = TextOperation()
        index = 0
        for c in self.components:
            if isinstance(c, str):
                inverse.delete(len(c))
            elif c > 0:
                inverse.retain(c)
                index += c
            else:
                inverse.insert(document[index : index + -c])
                index += -c
        return inverse

    # -- algebra ------------------------------------------------------------

    def compose(self, other: "TextOperation") -> "TextOperation":
        """Return ``self`` followed by ``other`` as a single operation.

        Requires ``other.base_length == self.target_length``.  Satisfies
        ``compose(a, b).apply(S) == b.apply(a.apply(S))``.
        """
        if other.base_length != self.target_length:
            raise ComponentError(
                f"cannot compose: first target length {self.target_length} != "
                f"second base length {other.base_length}"
            )
        result = TextOperation()
        it_a = _ComponentCursor(self.components)
        it_b = _ComponentCursor(other.components)
        while True:
            a, b = it_a.peek(), it_b.peek()
            if a is None and b is None:
                break
            # Deletions of the first operation pass through untouched.
            if isinstance(a, int) and a < 0:
                result.delete(-a)
                it_a.advance(-a, is_insert=False)
                continue
            # Insertions of the second operation pass through untouched.
            if isinstance(b, str):
                result.insert(b)
                it_b.advance(len(b), is_insert=True)
                continue
            if a is None or b is None:
                raise ComponentError("compose ran off the end: length mismatch")
            if isinstance(a, str):
                n = _component_len(a)
                m = _component_len(b)
                step = min(n, m)
                if isinstance(b, int) and b > 0:
                    result.insert(a[:step])
                else:  # b deletes characters a inserted: they annihilate
                    pass
                it_a.advance(step, is_insert=True)
                it_b.advance(step, is_insert=False)
                continue
            # a retains
            n = _component_len(a)
            m = _component_len(b)
            step = min(n, m)
            if isinstance(b, int) and b > 0:
                result.retain(step)
            else:
                result.delete(step)
            it_a.advance(step, is_insert=False)
            it_b.advance(step, is_insert=False)
        return result

    def transform(
        self, other: "TextOperation", self_priority: bool = True
    ) -> tuple["TextOperation", "TextOperation"]:
        """Symmetric transform ``(a, b) -> (a', b')`` satisfying TP1.

        Both operations must share a base length.  ``self_priority``
        breaks insert-vs-insert position ties: when ``True``, ``self``'s
        insertion ends up before ``other``'s in the merged result.
        """
        a_op, b_op = self, other
        if a_op.base_length != b_op.base_length:
            raise ComponentError(
                f"cannot transform: base lengths differ "
                f"({a_op.base_length} vs {b_op.base_length})"
            )
        a_prime = TextOperation()
        b_prime = TextOperation()
        it_a = _ComponentCursor(a_op.components)
        it_b = _ComponentCursor(b_op.components)
        while True:
            a, b = it_a.peek(), it_b.peek()
            if a is None and b is None:
                break
            # Inserts come first; the priority flag orders simultaneous ones.
            if isinstance(a, str) and (self_priority or not isinstance(b, str)):
                a_prime.insert(a)
                b_prime.retain(len(a))
                it_a.advance(len(a), is_insert=True)
                continue
            if isinstance(b, str):
                a_prime.retain(len(b))
                b_prime.insert(b)
                it_b.advance(len(b), is_insert=True)
                continue
            if isinstance(a, str):
                a_prime.insert(a)
                b_prime.retain(len(a))
                it_a.advance(len(a), is_insert=True)
                continue
            if a is None or b is None:
                raise ComponentError("transform ran off the end: length mismatch")
            n, m = _component_len(a), _component_len(b)
            step = min(n, m)
            a_del = a < 0
            b_del = b < 0
            if not a_del and not b_del:
                a_prime.retain(step)
                b_prime.retain(step)
            elif a_del and not b_del:
                a_prime.delete(step)
            elif not a_del and b_del:
                b_prime.delete(step)
            # both delete the same span: it vanishes from both results
            it_a.advance(step, is_insert=False)
            it_b.advance(step, is_insert=False)
        return a_prime, b_prime

    # -- conversions --------------------------------------------------------

    @classmethod
    def noop(cls, length: int) -> "TextOperation":
        """The identity operation on a document of ``length`` characters."""
        return cls().retain(length)

    @classmethod
    def from_positional(cls, op: Operation, doc_length: int) -> "TextOperation":
        """Convert a positional operation (or group) to component form."""
        result = cls.noop(doc_length)
        for primitive in flatten(op):
            step = cls()
            if isinstance(primitive, Insert):
                step.retain(primitive.pos).insert(primitive.text)
                step.retain(doc_length - primitive.pos)
                doc_length += len(primitive.text)
            elif isinstance(primitive, Delete):
                step.retain(primitive.pos).delete(primitive.count)
                step.retain(doc_length - primitive.end)
                doc_length -= primitive.count
            else:  # pragma: no cover - flatten() drops identities
                continue
            result = result.compose(step)
        return result

    def to_positional(self) -> Operation:
        """Convert to positional form (a group when multiple spans change).

        Members are emitted in document order with positions adjusted for
        sequential application, mirroring :class:`OperationGroup` semantics.
        """
        members: list[Operation] = []
        pos = 0  # position in the evolving (partially edited) document
        for c in self.components:
            if isinstance(c, str):
                members.append(Insert(c, pos))
                pos += len(c)
            elif c > 0:
                pos += c
            else:
                members.append(Delete(-c, pos))
        if not members:
            return Identity()
        if len(members) == 1:
            return members[0]
        return OperationGroup(tuple(members))


def _component_len(c: Component) -> int:
    return len(c) if isinstance(c, str) else abs(c)


class _ComponentCursor:
    """Cursor over a component list supporting partial consumption."""

    __slots__ = ("_components", "_index", "_offset")

    def __init__(self, components: Iterable[Component]) -> None:
        self._components = list(components)
        self._index = 0
        self._offset = 0

    def peek(self) -> Component | None:
        """Current (possibly partially consumed) component, or ``None``."""
        if self._index >= len(self._components):
            return None
        c = self._components[self._index]
        if self._offset == 0:
            return c
        if isinstance(c, str):
            return c[self._offset :]
        if c > 0:
            return c - self._offset
        return c + self._offset  # negative: consumed part added back

    def advance(self, n: int, is_insert: bool) -> None:
        """Consume ``n`` units of the current component."""
        c = self.peek()
        if c is None:
            raise ComponentError("advance past end of components")
        remaining = _component_len(c)
        if n > remaining:
            raise ComponentError(f"advance {n} exceeds component length {remaining}")
        del is_insert  # kept for call-site readability
        if n == remaining:
            self._index += 1
            self._offset = 0
        else:
            self._offset += n
